(* Always-on metrics registry.

   Hot path: a pre-fetched handle + Atomic.fetch_and_add — no lock, no
   allocation, no clock read beyond what the caller already measured.
   Cold path (registration, exposition, reset) takes a single global
   mutex; recording never does.

   Histogram buckets are a fixed log₂ ladder — upper bounds 2^k seconds
   for k in [-20, 6] (≈1µs .. 64s) plus a +Inf overflow bucket — so
   snapshots from any two histograms, runs or processes merge bucket-wise
   and quantiles come from linear interpolation within one bucket. *)

let enabled_flag = Atomic.make true
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* -- histograms ---------------------------------------------------------- *)

module Histogram = struct
  let min_exp = -20
  let max_exp = 6
  let bounds = Array.init (max_exp - min_exp + 1) (fun i -> ldexp 1. (min_exp + i))
  let nbounds = Array.length bounds
  let nbuckets = nbounds + 1

  type t = { cells : int Atomic.t array; sum_ns : int Atomic.t }

  let make () =
    { cells = Array.init nbuckets (fun _ -> Atomic.make 0); sum_ns = Atomic.make 0 }

  (* linear scan over 27 floats: allocation-free, and latencies cluster
     in the middle of the ladder anyway *)
  let bucket_index v =
    let rec go i = if i >= nbounds || v <= Array.unsafe_get bounds i then i else go (i + 1) in
    go 0

  let observe t v =
    if Atomic.get enabled_flag then begin
      ignore (Atomic.fetch_and_add t.cells.(bucket_index v) 1);
      ignore (Atomic.fetch_and_add t.sum_ns (int_of_float (v *. 1e9)))
    end

  type snapshot = { counts : int array; sum : float }

  let snapshot t =
    {
      counts = Array.map Atomic.get t.cells;
      sum = float_of_int (Atomic.get t.sum_ns) *. 1e-9;
    }

  let count s = Array.fold_left ( + ) 0 s.counts

  let merge a b =
    { counts = Array.map2 ( + ) a.counts b.counts; sum = a.sum +. b.sum }

  let sub a b =
    {
      counts = Array.map2 (fun x y -> max 0 (x - y)) a.counts b.counts;
      sum = Float.max 0. (a.sum -. b.sum);
    }

  let quantile s q =
    let n = count s in
    if n = 0 then 0.
    else begin
      let q = Float.min 1. (Float.max 0. q) in
      let rank = q *. float_of_int n in
      let rec go i cum =
        if i >= nbuckets then bounds.(nbounds - 1)
        else
          let c = s.counts.(i) in
          let cum' = cum +. float_of_int c in
          if c > 0 && cum' >= rank then
            if i >= nbounds then bounds.(nbounds - 1)
            else
              let lower = if i = 0 then 0. else bounds.(i - 1) in
              let upper = bounds.(i) in
              let frac = (rank -. cum) /. float_of_int c in
              lower +. (Float.min 1. (Float.max 0. frac) *. (upper -. lower))
          else go (i + 1) cum'
      in
      go 0 0.
    end

  let reset t =
    Array.iter (fun c -> Atomic.set c 0) t.cells;
    Atomic.set t.sum_ns 0
end

(* -- counters and gauges ------------------------------------------------- *)

module Counter = struct
  type t = int Atomic.t

  let incr t = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add t 1)
  let add t n = if n > 0 && Atomic.get enabled_flag then ignore (Atomic.fetch_and_add t n)
  let value t = Atomic.get t
end

module Gauge = struct
  type t = int Atomic.t

  (* state, not traffic: never gated, never reset *)
  let set t v = Atomic.set t v
  let add t n = ignore (Atomic.fetch_and_add t n)
  let value t = Atomic.get t
end

(* -- the registry -------------------------------------------------------- *)

type kind = K_counter | K_gauge | K_histogram

type cell_store =
  | C of Counter.t
  | G of Gauge.t
  | H of Histogram.t

type cell = {
  c_labels : (string * string) list;
  c_permanent : bool;
  c_store : cell_store;
}

type family = {
  f_name : string;
  f_help : string;
  f_kind : kind;
  mutable f_cells : cell list;  (** registration order, reversed *)
}

let registry_lock = Mutex.create ()
let families : family list ref = ref []  (* registration order, reversed *)

let locked f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let sanitize_name name =
  String.mapi
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> c
      | '0' .. '9' when i > 0 -> c
      | _ -> '_')
    name

let kind_label = function
  | K_counter -> "counter"
  | K_gauge -> "gauge"
  | K_histogram -> "histogram"

let register ~kind ~help ~labels ~permanent ~make name =
  let name = sanitize_name name in
  locked (fun () ->
      let fam =
        match List.find_opt (fun f -> f.f_name = name) !families with
        | Some f ->
          if f.f_kind <> kind then
            invalid_arg
              (Printf.sprintf "Metrics: %s already registered as a %s" name
                 (kind_label f.f_kind));
          f
        | None ->
          let f = { f_name = name; f_help = help; f_kind = kind; f_cells = [] } in
          families := f :: !families;
          f
      in
      match List.find_opt (fun c -> c.c_labels = labels) fam.f_cells with
      | Some c -> c.c_store
      | None ->
        let c = { c_labels = labels; c_permanent = permanent; c_store = make () } in
        fam.f_cells <- c :: fam.f_cells;
        c.c_store)

let counter ?(help = "") ?(labels = []) ?(permanent = false) name =
  match
    register ~kind:K_counter ~help ~labels ~permanent
      ~make:(fun () -> C (Atomic.make 0))
      name
  with
  | C c -> c
  | _ -> assert false

let gauge ?(help = "") ?(labels = []) name =
  match
    register ~kind:K_gauge ~help ~labels ~permanent:true
      ~make:(fun () -> G (Atomic.make 0))
      name
  with
  | G g -> g
  | _ -> assert false

let histogram ?(help = "") ?(labels = []) ?(permanent = false) name =
  match
    register ~kind:K_histogram ~help ~labels ~permanent
      ~make:(fun () -> H (Histogram.make ()))
      name
  with
  | H h -> h
  | _ -> assert false

(* -- collectors ---------------------------------------------------------- *)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of Histogram.snapshot

type sample = {
  name : string;
  help : string;
  kind : kind;
  labels : (string * string) list;
  value : value;
}

type collector_id = int

let next_collector = ref 0
let collectors : (collector_id * (unit -> sample list)) list ref = ref []

let register_collector f =
  locked (fun () ->
      let id = !next_collector in
      incr next_collector;
      collectors := (id, f) :: !collectors;
      id)

let unregister_collector id =
  locked (fun () -> collectors := List.filter (fun (i, _) -> i <> id) !collectors)

(* -- exposition ---------------------------------------------------------- *)

let registry_samples () =
  let fams =
    locked (fun () -> List.rev_map (fun f -> (f, List.rev f.f_cells)) !families)
  in
  List.concat_map
    (fun (f, cells) ->
      List.map
        (fun c ->
          let value =
            match c.c_store with
            | C a -> Counter_v (Atomic.get a)
            | G a -> Gauge_v (float_of_int (Atomic.get a))
            | H h -> Histogram_v (Histogram.snapshot h)
          in
          { name = f.f_name; help = f.f_help; kind = f.f_kind;
            labels = c.c_labels; value })
        cells)
    fams

let samples () =
  let collected =
    let cs = locked (fun () -> List.rev_map snd !collectors) in
    List.concat_map (fun f -> try f () with _ -> []) cs
  in
  registry_samples () @ collected

let find_sample ?(labels = []) name =
  List.find_opt (fun s -> s.name = name && s.labels = labels) (samples ())

(* shortest float representation that still round-trips: bucket bounds
   are exact powers of two and must parse back to the same float *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape_label_value buf s =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s

let add_labels buf = function
  | [] -> ()
  | labels ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (sanitize_name k);
        Buffer.add_string buf "=\"";
        escape_label_value buf v;
        Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}'

let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render (samples : sample list) =
  let buf = Buffer.create 4096 in
  let line name labels v =
    Buffer.add_string buf name;
    add_labels buf labels;
    Buffer.add_char buf ' ';
    Buffer.add_string buf v;
    Buffer.add_char buf '\n'
  in
  (* group consecutive same-name samples into one family block; a
     family's samples are contiguous in registry order *)
  let seen_header = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if not (Hashtbl.mem seen_header s.name) then begin
        Hashtbl.add seen_header s.name ();
        let help = if s.help = "" then s.name else s.help in
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" s.name (escape_help help));
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" s.name (kind_label s.kind))
      end;
      match s.value with
      | Counter_v n -> line s.name s.labels (string_of_int n)
      | Gauge_v f -> line s.name s.labels (float_repr f)
      | Histogram_v snap ->
        let cum = ref 0 in
        Array.iteri
          (fun i c ->
            cum := !cum + c;
            let le =
              if i < Array.length Histogram.bounds then
                float_repr Histogram.bounds.(i)
              else "+Inf"
            in
            line (s.name ^ "_bucket")
              (s.labels @ [ ("le", le) ])
              (string_of_int !cum))
          snap.Histogram.counts;
        line (s.name ^ "_sum") s.labels (float_repr snap.Histogram.sum);
        line (s.name ^ "_count") s.labels (string_of_int !cum))
    samples;
  Buffer.contents buf

let prometheus () =
  (* sort so each family's cells are contiguous even when collectors
     contribute to a family the registry also owns *)
  let all = samples () in
  let order = Hashtbl.create 16 in
  List.iteri
    (fun i s -> if not (Hashtbl.mem order s.name) then Hashtbl.add order s.name i)
    all;
  let all =
    List.stable_sort
      (fun a b -> compare (Hashtbl.find order a.name) (Hashtbl.find order b.name))
      all
  in
  render all

(* -- reset --------------------------------------------------------------- *)

let reset_values () =
  let cells = locked (fun () -> List.concat_map (fun f -> f.f_cells) !families) in
  List.iter
    (fun c ->
      if not c.c_permanent then
        match c.c_store with
        | C a -> Atomic.set a 0
        | G _ -> ()
        | H h -> Histogram.reset h)
    cells

(* -- summaries (the store behind Obs.counter / Obs.histogram) ------------ *)

module Summary = struct
  type snap = { count : int; sum : float; min_v : float; max_v : float }

  type acc = {
    mutable a_count : int;
    mutable a_sum : float;
    mutable a_min : float;
    mutable a_max : float;
  }

  let lock = Mutex.create ()
  let table : (string, acc) Hashtbl.t = Hashtbl.create 32

  let observe name v =
    if Atomic.get enabled_flag then begin
      Mutex.lock lock;
      (match Hashtbl.find_opt table name with
      | Some a ->
        a.a_count <- a.a_count + 1;
        a.a_sum <- a.a_sum +. v;
        if v < a.a_min then a.a_min <- v;
        if v > a.a_max then a.a_max <- v
      | None ->
        Hashtbl.add table name
          { a_count = 1; a_sum = v; a_min = v; a_max = v });
      Mutex.unlock lock
    end

  let snapshot () =
    Mutex.lock lock;
    let out =
      Hashtbl.fold
        (fun name a acc ->
          (name, { count = a.a_count; sum = a.a_sum; min_v = a.a_min; max_v = a.a_max })
          :: acc)
        table []
    in
    Mutex.unlock lock;
    List.sort (fun (a, _) (b, _) -> String.compare a b) out

  let reset () =
    Mutex.lock lock;
    Hashtbl.reset table;
    Mutex.unlock lock
end

let reset_values () =
  reset_values ();
  Summary.reset ()

let clear () =
  locked (fun () ->
      families := [];
      collectors := []);
  Summary.reset ()
