(** The edsql shell: directive handling, the interactive loop and the
    script runner, parameterised on the line source and output formatter
    so tests can drive a whole session in memory.

    Every REPL line is protected: a parse error, a {!Session.Session_error}
    or any runtime exception (e.g. [Failure]) prints a one-line
    [error: ...] and the loop keeps going — only [Out_of_memory] and
    [Stack_overflow] propagate. *)

val help_text : string

val print_result : Format.formatter -> Session.result -> unit

val print_plan : Format.formatter -> Session.t -> Session.plan -> unit

val print_session_stats : Format.formatter -> Session.t -> unit
(** The [.stats] report: cumulative evaluator counters (including
    hash-join and fix-cache work), the physical layer and domain count,
    and the last rewrite statistics. *)

val limits_config : int -> Session.Optimizer.config
(** A config applying one limit to every rule block (negative =
    infinite), with a single round. *)

val dispatch :
  Format.formatter ->
  Session.t ->
  string ->
  [ `Quit | `Continue | `Swap of Session.t ]
(** Execute one dot-directive line (already trimmed, starting with
    ['.']), printing its output to the formatter.  [`Swap] is a
    successful [.load]: the caller must adopt the returned session.
    Shared by the interactive loop and the query server; errors
    propagate (the REPL and the server each wrap it in their own
    per-line recovery). *)

val verify_rules_text : Format.formatter -> Session.t -> string -> bool
(** The gate behind [.verify] and the server's [VERIFY RULES]:
    differentially verify the pack text against the session's current
    program (printing the full report) and append it as block
    "verified" only when clean.  Returns [true] iff accepted. *)

val describe_error : exn -> string
(** The one-line [error: ...] rendering used by the REPL's per-line
    recovery (parse, session, storage, timeout and generic errors). *)

val start_tracing : string -> unit
(** Open a Chrome trace-event file and install it as the global sink
    (closing any previous one). *)

val stop_tracing : unit -> unit
(** Uninstall the sink and close the trace file, writing the closing
    bracket.  Safe to call when tracing is off. *)

val repl :
  ?banner:bool ->
  ?ppf:Format.formatter ->
  read_line:(unit -> string option) ->
  Session.t ->
  Session.t
(** Run the interactive loop until [.quit] or end of input.  Returns the
    session in effect on exit ([.load] swaps it mid-session). *)

val run_file : ?ppf:Format.formatter -> explain:bool -> Session.t -> string -> unit
(** Execute an ESQL script.  Unlike {!repl}, errors propagate: a script
    stops at the first failing statement. *)
