(* The edsql shell behind bin/edsql.ml: statements are ESQL, directives
   start with a dot (see [help_text]).  Lives in the library, driven by
   a [read_line] thunk and an output formatter, so the test suite can
   push a scripted conversation through a real REPL loop. *)

module Relation = Session.Relation
module Lera = Session.Lera
module Rule = Session.Rule
module Engine = Session.Engine
module Optimizer = Session.Optimizer
module Eval = Session.Eval
module Obs = Eds_obs.Obs
module Rule_parser = Eds_rewriter.Rule_parser
module Verify = Eds_rulelab.Verify

let print_result ppf = function
  | Session.Done -> Fmt.pf ppf "ok@."
  | Session.Inserted n ->
    Fmt.pf ppf "%d tuple%s inserted@." n (if n = 1 then "" else "s")
  | Session.Deleted n ->
    Fmt.pf ppf "%d tuple%s deleted@." n (if n = 1 then "" else "s")
  | Session.Updated n ->
    Fmt.pf ppf "%d tuple%s updated@." n (if n = 1 then "" else "s")
  | Session.Rows rel ->
    Fmt.pf ppf "%a(%d tuple%s)@." Relation.pp rel (Relation.cardinality rel)
      (if Relation.cardinality rel = 1 then "" else "s")
  | Session.Report text -> Fmt.pf ppf "%s@?" text

let print_plan ppf session (p : Session.plan) =
  let side label rel =
    if Lera.operator_count rel <= 3 then
      Fmt.pf ppf "%s: %a@.            (%a)@." label Lera.pp rel Eds_lera.Cost.pp
        (Session.estimate session rel)
    else begin
      Fmt.pf ppf "%s: (%a)@.%a" label Eds_lera.Cost.pp
        (Session.estimate session rel) Lera.pp_tree rel
    end
  in
  side "translated" p.Session.translated;
  side "rewritten " p.Session.rewritten;
  Fmt.pf ppf "rewriting : %a@." Engine.pp_stats p.Session.rewrite_stats

let limits_config n =
  let l = if n < 0 then None else Some n in
  {
    Optimizer.merging_limit = l;
    fixpoint_limit = l;
    permutation_limit = l;
    semantic_limit = l;
    simplification_limit = l;
    rounds = 1;
  }

(* split ".directive the rest" into the directive token and its argument *)
let cut_directive line =
  let n = String.length line in
  let rec blank i =
    if i >= n then n
    else match line.[i] with ' ' | '\t' -> i | _ -> blank (i + 1)
  in
  let i = blank 0 in
  (String.sub line 0 i, String.trim (String.sub line i (n - i)))

let help_text =
  "directives:\n\
  \  .explain SELECT ...   show the LERA expression before/after rewriting\n\
  \  .analyze SELECT ...   EXPLAIN ANALYZE: execute and show per-operator\n\
  \                        actual rows, probes/builds and elapsed time\n\
  \  .trace SELECT ...     show every rule application, in order\n\
  \  .trace-file FILE      write a Chrome trace-event file (.trace-file off stops)\n\
  \  .profile on|off       collect per-rule attempt/fire/veto statistics;\n\
  \                        'off' (or bare .profile) prints the report\n\
  \  .profile report       never-fired (dead) rules under the current profile\n\
  \  .verify FILE          differentially verify a rule pack against the\n\
  \                        current program; appended to block 'verified'\n\
  \                        only if every rule comes out clean\n\
  \  .stats                cumulative evaluator counters and last rewrite stats\n\
  \  .stats reset          zero the cumulative counters (generations survive)\n\
  \  .rules                list the current rule program\n\
  \  .check                termination warnings for the rule program (\xc2\xa74.2)\n\
  \  .limits N             set every block limit to N (negative = infinite)\n\
  \  .norewrite / .rewrite disable / enable the rewriter\n\
  \  .physical naive|indexed|parallel   select the physical evaluation layer\n\
  \  .domains N            worker domains for the parallel layer\n\
  \  .constraint TEXT      declare an integrity constraint (Fig. 10)\n\
  \  .refresh VIEW         force a full recompute of a materialized view\n\
  \  .save FILE / .load FILE   dump or restore the whole session\n\
  \                        (.save also works against an edsd server;\n\
  \                         start one with `edsd --db FILE` and attach\n\
  \                         this shell with `edsql --connect HOST:PORT`)\n\
  \  .help                 this message\n\
  \  .quit                 leave"

(* the out_channel behind the current trace sink, so we can close it *)
let trace_channel : out_channel option ref = ref None

let stop_tracing () =
  Obs.set_sink None;
  match !trace_channel with
  | Some oc ->
    close_out oc;
    trace_channel := None
  | None -> ()

let start_tracing path =
  stop_tracing ();
  let oc = open_out path in
  trace_channel := Some oc;
  Obs.set_sink (Some (Obs.trace_sink oc))

let all_rules session =
  List.concat_map
    (fun b -> List.map (fun r -> (b.Rule.block_name, r.Rule.name)) b.Rule.rules)
    (Session.program session).Rule.blocks

let print_profile ppf session p =
  Fmt.pf ppf "%a@." (Obs.Profile.pp ~all_rules:(all_rules session)) p

let print_session_stats ppf session =
  let es = Session.eval_stats session in
  Fmt.pf ppf "statements run   : %d@." (Session.statements_run session);
  Fmt.pf ppf "physical layer   : %s@."
    (Eval.Physical.to_string (Session.physical session));
  Fmt.pf ppf "domains          : %d@." (Session.domains session);
  Fmt.pf ppf "eval combinations: %d@." es.Eval.combinations;
  Fmt.pf ppf "tuples read      : %d@." es.Eval.tuples_read;
  Fmt.pf ppf "tuples produced  : %d@." es.Eval.tuples_produced;
  Fmt.pf ppf "fixpoint iters   : %d@." es.Eval.fix_iterations;
  Fmt.pf ppf "index probes     : %d@." es.Eval.probes;
  Fmt.pf ppf "index builds     : %d@." es.Eval.builds;
  Fmt.pf ppf "fix-cache hit/miss: %d/%d@." es.Eval.fix_cache_hits
    es.Eval.fix_cache_misses;
  let entries, invalidations = Session.fix_cache_stats session in
  Fmt.pf ppf "fix-cache shared : %d entries, %d invalidated by DML@." entries
    invalidations;
  let mvs = Session.mv_stats session in
  let extents = List.length (Session.Materializer.views (Session.mviews session)) in
  Fmt.pf ppf
    "mat. views       : %d extents, %d maintenance runs, %d fallback \
     recomputes, %d refreshes, %d delta tuples@."
    extents mvs.Session.Materializer.maintenance_runs
    mvs.Session.Materializer.fallback_recomputes
    mvs.Session.Materializer.refreshes mvs.Session.Materializer.delta_tuples;
  if mvs.Session.Materializer.last_refresh > 0. then
    Fmt.pf ppf "mv last refresh  : %.1fs ago@."
      (Unix.gettimeofday () -. mvs.Session.Materializer.last_refresh);
  (match Obs.Profile.current () with
  | None -> ()
  | Some p ->
    let rules = all_rules session in
    let dead = Obs.Profile.never_fired ~all_rules:rules p in
    Fmt.pf ppf "dead rules       : %d of %d profiled%a@." (List.length dead)
      (List.length rules)
      (fun ppf -> function
        | [] -> ()
        | l ->
          Fmt.pf ppf " (%a)"
            (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (b, r) ->
                 Fmt.pf ppf "%s/%s" b r))
            l)
      dead);
  match Session.last_rewrite_stats session with
  | None -> Fmt.pf ppf "last rewrite     : (none)@."
  | Some rs -> Fmt.pf ppf "last rewrite     : %a@." Engine.pp_stats rs

(* The gate for untrusted rule packs, shared with the server's
   [VERIFY RULES] wire command: differentially verify the pack against
   the session's current program and append it (block "verified") only
   when every rule comes out clean.  Returns [true] iff the pack was
   accepted. *)
let verify_rules_text ppf session text =
  match Rule_parser.parse_rules text with
  | exception Rule_parser.Rule_parse_error e ->
    Fmt.pf ppf "rule error: %s@." (Rule_parser.error_to_string e);
    false
  | [] ->
    Fmt.pf ppf "no rules in pack@.";
    false
  | rules ->
    let report = Verify.verify_rules ~base:(Session.program session) rules in
    Fmt.pf ppf "%a@." Verify.pp_report report;
    if Verify.clean report then begin
      Session.add_rules session ~block:"verified" text;
      Fmt.pf ppf "pack accepted: %d rule%s appended to block \"verified\"@."
        (List.length rules)
        (if List.length rules = 1 then "" else "s");
      true
    end
    else begin
      Fmt.pf ppf "pack rejected: fix the flagged rules and retry@.";
      false
    end

let handle_directive ppf session line =
  let directive, arg = cut_directive line in
  match directive with
  | ".quit" | ".exit" -> `Quit
  | ".help" ->
    Fmt.pf ppf "%s@." help_text;
    `Continue
  | ".explain" ->
    print_plan ppf session (Session.explain session arg);
    `Continue
  | ".trace" ->
    let plan = Session.explain session arg in
    List.iter
      (fun step -> Fmt.pf ppf "%a@." Engine.pp_step step)
      (Engine.steps plan.Session.rewrite_stats);
    print_plan ppf session plan;
    `Continue
  | ".trace-file" ->
    (match arg with
    | "" | "off" ->
      stop_tracing ();
      Fmt.pf ppf "tracing off@."
    | path ->
      start_tracing path;
      Fmt.pf ppf "tracing to %s (Chrome trace-event format)@." path);
    `Continue
  | ".profile" ->
    (match (arg, Obs.Profile.current ()) with
    | "on", _ ->
      Obs.Profile.set_current (Some (Obs.Profile.create ()));
      Fmt.pf ppf "profiling on@."
    | "off", Some p ->
      print_profile ppf session p;
      Obs.Profile.set_current None
    | "off", None -> Fmt.pf ppf "profiling was already off@."
    | "", Some p -> print_profile ppf session p
    | "report", Some p ->
      (match Obs.Profile.never_fired ~all_rules:(all_rules session) p with
      | [] -> Fmt.pf ppf "no dead rules: every rule fired at least once@."
      | dead ->
        List.iter
          (fun (b, r) -> Fmt.pf ppf "dead rule: %s/%s (never fired)@." b r)
          dead)
    | "report", None -> Fmt.pf ppf "profiling is off (.profile on first)@."
    | _ -> Fmt.pf ppf "usage: .profile on|off|report@.");
    `Continue
  | ".stats" ->
    (match arg with
    | "reset" ->
      Session.reset_stats session;
      Eds_obs.Metrics.reset_values ();
      Fmt.pf ppf "stats reset (generations and integrity counters preserved)@."
    | _ -> print_session_stats ppf session);
    `Continue
  | ".analyze" ->
    print_result ppf (Session.exec_string session ("EXPLAIN ANALYZE " ^ arg));
    `Continue
  | ".refresh" ->
    (match arg with
    | "" -> Fmt.pf ppf "usage: .refresh VIEW@."
    | name -> print_result ppf (Session.exec_string session ("REFRESH " ^ name)));
    `Continue
  | ".rules" ->
    let program = Session.program session in
    List.iter
      (fun b ->
        Fmt.pf ppf "%a@." Rule.pp_block b;
        List.iter (fun r -> Fmt.pf ppf "  %a@." Rule.pp r) b.Rule.rules)
      program.Rule.blocks;
    `Continue
  | ".check" ->
    (match Session.check_program session with
    | [] -> Fmt.pf ppf "rule program is termination-safe (§4.2)@."
    | warnings ->
      List.iter
        (fun w -> Fmt.pf ppf "%a@." Eds_rewriter.Rule_analysis.pp_warning w)
        warnings);
    `Continue
  | ".limits" ->
    (match int_of_string_opt arg with
    | Some n -> Session.set_config session (limits_config n)
    | None -> Fmt.pf ppf "usage: .limits N   (negative N = infinite)@.");
    `Continue
  | ".norewrite" ->
    Session.set_rewriting session false;
    `Continue
  | ".rewrite" ->
    Session.set_rewriting session true;
    `Continue
  | ".physical" ->
    (match Eval.Physical.of_string arg with
    | Some p ->
      Session.set_physical session p;
      Fmt.pf ppf "physical layer: %s@." (Eval.Physical.to_string p)
    | None ->
      Fmt.pf ppf "physical layer: %s (usage: .physical naive|indexed|parallel)@."
        (Eval.Physical.to_string (Session.physical session)));
    `Continue
  | ".domains" ->
    (match (arg, int_of_string_opt arg) with
    | "", _ ->
      Fmt.pf ppf "domains: %d (usage: .domains N)@." (Session.domains session)
    | _, Some n when n >= 1 ->
      Session.set_domains session n;
      Fmt.pf ppf "domains: %d@." n
    | _ -> Fmt.pf ppf "usage: .domains N   (N >= 1)@.");
    `Continue
  | ".verify" ->
    (match arg with
    | "" -> Fmt.pf ppf "usage: .verify FILE@."
    | path ->
      let text = In_channel.with_open_text path In_channel.input_all in
      ignore (verify_rules_text ppf session text));
    `Continue
  | ".constraint" ->
    Session.add_integrity_constraint session arg;
    Fmt.pf ppf "constraint recorded@.";
    `Continue
  | _ ->
    Fmt.pf ppf "unknown directive %s, try .help@." directive;
    `Continue

let handle_save_load ppf session line =
  let strip prefix =
    String.sub line (String.length prefix)
      (String.length line - String.length prefix)
    |> String.trim
  in
  if String.length line >= 5 && String.sub line 0 5 = ".save" then begin
    Storage.save session (strip ".save");
    Fmt.pf ppf "saved@.";
    Some session
  end
  else if String.length line >= 5 && String.sub line 0 5 = ".load" then begin
    let s' = Storage.load (strip ".load") in
    Fmt.pf ppf "loaded@.";
    Some s'
  end
  else None

let describe_error = function
  | Session.Session_error msg
  | Storage.Storage_error msg
  | Sys_error msg
  | Failure msg
  | Invalid_argument msg -> msg
  | Eds_esql.Parser.Parse_error msg -> "parse error: " ^ msg
  | Eds_engine.Cancel.Timeout budget ->
    Fmt.str "query timeout after %gs (the connection survives)" budget
  | e -> Printexc.to_string e

(* one REPL line must never kill the session: anything except the
   genuinely fatal runtime conditions becomes a one-line report *)
let protect ppf ~default f =
  try f () with
  | (Out_of_memory | Stack_overflow) as e -> raise e
  | e ->
    Fmt.pf ppf "error: %s@." (describe_error e);
    default

(* One dot-directive line, shared by the interactive loop and the query
   server: [`Swap] is a successful [.load] handing back the restored
   session. *)
let dispatch ppf session line =
  match handle_save_load ppf session line with
  | Some s' -> if s' == session then `Continue else `Swap s'
  | None -> handle_directive ppf session line

let repl ?(banner = true) ?(ppf = Fmt.stdout) ~read_line session0 =
  if banner then begin
    Fmt.pf ppf "edsql — EDS extensible query rewriter (ICDE'91 reproduction)@.";
    Fmt.pf ppf
      "terminate statements with ';', directives with newline; .quit to leave@."
  end;
  let session = ref session0 in
  let buffer = Buffer.create 256 in
  let rec loop () =
    if Buffer.length buffer = 0 then Fmt.pf ppf "edsql> @?"
    else Fmt.pf ppf "  ...> @?";
    match read_line () with
    | None -> ()
    | Some line ->
      let trimmed = String.trim line in
      if Buffer.length buffer = 0 && String.length trimmed > 0 && trimmed.[0] = '.'
      then begin
        match
          protect ppf ~default:`Continue (fun () ->
              dispatch ppf !session trimmed)
        with
        | `Quit -> ()
        | `Swap s' ->
          session := s';
          loop ()
        | `Continue -> loop ()
      end
      else begin
        Buffer.add_string buffer line;
        Buffer.add_char buffer '\n';
        if String.length trimmed > 0 && trimmed.[String.length trimmed - 1] = ';'
        then begin
          let stmt = Buffer.contents buffer in
          Buffer.clear buffer;
          protect ppf ~default:() (fun () ->
              print_result ppf (Session.exec_string !session stmt));
          loop ()
        end
        else loop ()
      end
  in
  loop ();
  !session

let run_file ?(ppf = Fmt.stdout) ~explain session path =
  let text = In_channel.with_open_text path In_channel.input_all in
  let stmts = Eds_esql.Parser.parse_program text in
  List.iter
    (fun stmt ->
      match stmt with
      | Eds_esql.Ast.Select_stmt _ when explain ->
        let input = Fmt.str "%a" Eds_esql.Ast.pp_stmt stmt in
        print_plan ppf session (Session.explain session input);
        print_result ppf (Session.exec session stmt)
      | _ -> print_result ppf (Session.exec session stmt))
    stmts
