(** Dump and restore a whole session as text.

    The dump is an ESQL script re-declaring the schema (types in
    dependency order, tables, views) followed by directive comments that
    ESQL ignores but {!restore} interprets:

    {v
    --@ 3 <Name: 'Quinn', Salary: 12000>      object store entry (OID 3)
    --+ FILM [1, ['Zorba'], {'Adventure'}]    one tuple of a base relation
    v}

    Tuple payloads use the {!Eds_value.Value_text} syntax, so the dump
    round-trips every value the engine can hold — including nested
    collections, tuples and object references that plain ESQL INSERT
    literals cannot express. *)

exception Storage_error of string

val dump : Session.t -> string
(** Serialize schema, object store and base relations.  The rule program
    and registered OCaml functions/methods are {e not} serialized (they
    are code); re-register them after {!restore}.
    Raises {!Storage_error} on types outside the ESQL-declarable set. *)

val restore : string -> Session.t
(** Rebuild a session from {!dump} output.  Raises {!Storage_error} (or
    {!Session.Session_error}) on malformed input. *)

val atomic_write : ?fsync:bool -> path:string -> (out_channel -> unit) -> unit
(** [atomic_write ~path writer] runs [writer] against [path ^ ".tmp"],
    flushes, fsyncs ([fsync] defaults to [true]), and renames the temp
    file over [path].  If [writer] raises, the temp file is removed and
    [path] is untouched — a crash or failure mid-write can never corrupt
    the existing copy. *)

val save : ?fsync:bool -> Session.t -> string -> unit
(** [save s path] writes {!dump} to a file via {!atomic_write}: the old
    dump survives intact unless the new one is completely on disk. *)

val load : string -> Session.t
