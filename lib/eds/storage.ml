module Value = Eds_value.Value
module Value_text = Eds_value.Value_text
module Vtype = Eds_value.Vtype
module Relation = Eds_engine.Relation
module Database = Eds_engine.Database
module Materializer = Eds_engine.Materializer
module Ast = Eds_esql.Ast
module Catalog = Eds_esql.Catalog

exception Storage_error of string

let error fmt = Fmt.kstr (fun s -> raise (Storage_error s)) fmt

(* -- type declarations back to ESQL syntax ------------------------------- *)

let rec type_text (ty : Vtype.t) : string =
  match ty with
  | Vtype.Bool -> "BOOLEAN"
  | Vtype.Int -> "INT"
  | Vtype.Real -> "NUMERIC"
  | Vtype.String -> "CHAR"
  | Vtype.Enum (_, labels) ->
    Fmt.str "ENUMERATION OF (%s)"
      (String.concat ", " (List.map (fun l -> "'" ^ l ^ "'") labels))
  | Vtype.Tuple fields ->
    Fmt.str "TUPLE (%s)"
      (String.concat ", "
         (List.map (fun (n, t) -> Fmt.str "%s : %s" n (type_text t)) fields))
  | Vtype.Set t -> "SET OF " ^ type_text t
  | Vtype.Bag t -> "BAG OF " ^ type_text t
  | Vtype.List t -> "LIST OF " ^ type_text t
  | Vtype.Array t -> "ARRAY OF " ^ type_text t
  | Vtype.Named n | Vtype.Object n -> n
  | Vtype.Any | Vtype.Collection _ ->
    error "type %a cannot be dumped as ESQL" Vtype.pp ty

(* names a type definition depends on *)
let rec type_refs (ty : Vtype.t) : string list =
  match ty with
  | Vtype.Named n | Vtype.Object n -> [ n ]
  | Vtype.Tuple fields -> List.concat_map (fun (_, t) -> type_refs t) fields
  | Vtype.Set t | Vtype.Bag t | Vtype.List t | Vtype.Array t | Vtype.Collection t ->
    type_refs t
  | Vtype.Any | Vtype.Bool | Vtype.Int | Vtype.Real | Vtype.String | Vtype.Enum _ ->
    []

let type_decls_in_dependency_order env =
  let decls = Vtype.declarations env in
  let emitted = Hashtbl.create 16 in
  let buffer = ref [] in
  let rec emit (d : Vtype.decl) =
    if not (Hashtbl.mem emitted d.Vtype.name) then begin
      Hashtbl.replace emitted d.Vtype.name ();
      let deps =
        type_refs d.Vtype.definition
        @ (match d.Vtype.supertype with Some s -> [ s ] | None -> [])
      in
      List.iter
        (fun dep ->
          match
            List.find_opt (fun d' -> d'.Vtype.name = dep) decls
          with
          | Some d' -> emit d'
          | None -> ())
        deps;
      let super =
        match d.Vtype.supertype with
        | Some s -> Fmt.str " SUBTYPE OF %s" s
        | None -> ""
      in
      let obj = if d.Vtype.is_object then "OBJECT " else "" in
      buffer :=
        Fmt.str "TYPE %s%s %s%s ;" d.Vtype.name super obj
          (type_text d.Vtype.definition)
        :: !buffer
    end
  in
  List.iter emit decls;
  List.rev !buffer

(* -- dump ----------------------------------------------------------------- *)

let dump (s : Session.t) : string =
  let cat = Session.catalog s in
  let db = Session.database s in
  let buf = Buffer.create 4096 in
  let line fmt = Fmt.kstr (fun l -> Buffer.add_string buf (l ^ "\n")) fmt in
  line "-- eds session dump v1";
  List.iter (fun l -> line "%s" l) (type_decls_in_dependency_order (Catalog.types cat));
  List.iter
    (fun (name, schema) ->
      line "TABLE %s (%s) ;" name
        (String.concat ", "
           (List.map (fun (n, t) -> Fmt.str "%s : %s" n (type_text t)) schema)))
    (Catalog.tables cat);
  List.iter
    (fun (v : Catalog.view) ->
      let cols =
        match v.Catalog.columns with
        | [] -> ""
        | cs -> Fmt.str " (%s)" (String.concat ", " cs)
      in
      line "CREATE %sVIEW %s%s AS ( %a ) ;"
        (if v.Catalog.materialized then "MATERIALIZED " else "")
        v.Catalog.vname cols Ast.pp_select v.Catalog.body)
    (Catalog.views cat);
  List.iter
    (fun (oid, v) -> line "--@@ %d %s" oid (Value.to_string v))
    (Database.objects db);
  List.iter
    (fun name ->
      let rel = Database.relation db name in
      List.iter
        (fun tup -> line "--+ %s %s" name (Value.to_string (Value.list tup)))
        rel.Relation.tuples)
    (List.map fst (Catalog.tables cat));
  (* materialized extents, so restore installs them directly instead of
     re-deriving (restore feeds base tuples to the database, not through
     the session, so maintenance never runs) *)
  List.iter
    (fun (v : Materializer.view) ->
      match Database.relation_opt db v.Materializer.name with
      | None -> ()
      | Some rel ->
        List.iter
          (fun tup ->
            line "--* %s %s" v.Materializer.name
              (Value.to_string (Value.list tup)))
          rel.Relation.tuples)
    (Materializer.views (Session.mviews s));
  Buffer.contents buf

(* -- restore -------------------------------------------------------------- *)

let strip_prefix prefix line =
  if String.length line >= String.length prefix
     && String.sub line 0 (String.length prefix) = prefix
  then Some (String.sub line (String.length prefix)
               (String.length line - String.length prefix))
  else None

let split_first_word text =
  let text = String.trim text in
  match String.index_opt text ' ' with
  | Some i ->
    ( String.sub text 0 i,
      String.sub text (i + 1) (String.length text - i - 1) )
  | None -> error "malformed dump directive: %s" text

let restore (text : string) : Session.t =
  let s = Session.create () in
  let db = Session.database s in
  let lines = String.split_on_char '\n' text in
  let objects = ref [] in
  let tuples = ref [] in
  let extents = ref [] in
  let script = Buffer.create 4096 in
  List.iter
    (fun l ->
      match strip_prefix "--@ " l with
      | Some rest ->
        let oid, payload = split_first_word rest in
        let oid =
          match int_of_string_opt oid with
          | Some i -> i
          | None -> error "bad OID in dump: %s" oid
        in
        objects := (oid, payload) :: !objects
      | None -> (
        match strip_prefix "--+ " l with
        | Some rest -> tuples := split_first_word rest :: !tuples
        | None -> (
          match strip_prefix "--* " l with
          | Some rest -> extents := split_first_word rest :: !extents
          | None ->
            Buffer.add_string script l;
            Buffer.add_char script '\n')))
    lines;
  ignore (Session.exec_script s (Buffer.contents script));
  List.iter
    (fun (oid, payload) ->
      match Value_text.parse_opt payload with
      | Some v -> Database.restore_object db oid v
      | None -> error "bad object payload: %s" payload)
    (List.rev !objects);
  List.iter
    (fun (table, payload) ->
      match Value_text.parse_opt payload with
      | Some (Value.List tup) -> Database.insert db table tup
      | Some _ | None -> error "bad tuple payload for %s: %s" table payload)
    (List.rev !tuples);
  (* materialized extents: install the dumped tuples per view; a view
     with no dumped extent (older dump format) is recomputed instead *)
  let by_view = Hashtbl.create 8 in
  List.iter
    (fun (view, payload) ->
      let tup =
        match Value_text.parse_opt payload with
        | Some (Value.List tup) -> tup
        | Some _ | None -> error "bad extent payload for %s: %s" view payload
      in
      let prev = try Hashtbl.find by_view view with Not_found -> [] in
      Hashtbl.replace by_view view (tup :: prev))
    !extents (* reversed input + reversed accumulation = dump order *);
  List.iter
    (fun (v : Materializer.view) ->
      match Hashtbl.find_opt by_view v.Materializer.name with
      | Some tuples ->
        Database.add_relation db v.Materializer.name
          (Relation.make v.Materializer.schema tuples)
      | None ->
        ignore (Session.exec s (Ast.Refresh v.Materializer.name)))
    (Materializer.views (Session.mviews s));
  s

(* -- crash-safe file replacement ------------------------------------------ *)

(* Write-to-temp + fsync + rename: the destination either keeps its old
   bytes or atomically becomes the complete new content — a crash (or a
   failing writer) can never leave a half-written database as the only
   copy.  The temp file lives in the destination's directory so the
   rename stays within one filesystem. *)
let atomic_write ?(fsync = true) ~path writer =
  let tmp = path ^ ".tmp" in
  let oc = Out_channel.open_bin tmp in
  (match
     writer oc;
     Out_channel.flush oc;
     if fsync then Unix.fsync (Unix.descr_of_out_channel oc)
   with
  | () -> Out_channel.close oc
  | exception e ->
    (try Out_channel.close oc with _ -> ());
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  (match Sys.rename tmp path with
  | () -> ()
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  if fsync then begin
    (* persist the directory entry too; best-effort where unsupported *)
    match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
    | exception Unix.Unix_error _ -> ()
    | dirfd ->
      (try Unix.fsync dirfd with Unix.Unix_error _ -> ());
      (try Unix.close dirfd with Unix.Unix_error _ -> ())
  end

let save ?fsync s path =
  let text = dump s in
  atomic_write ?fsync ~path (fun oc -> Out_channel.output_string oc text)

let load path = restore (In_channel.with_open_text path In_channel.input_all)
