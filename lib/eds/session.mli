(** The EDS database session: the top-level façade tying together the
    catalog, the in-memory database, the extensible rewriter and the
    evaluator.  This is the API the examples and the [edsql] binary use:

    {[
      let s = Session.create () in
      Session.exec_string s "TABLE FILM (Numf : NUMERIC, …)";
      match Session.exec_string s "SELECT …" with
      | Session.Rows rel -> Fmt.pr "%a" Relation.pp rel
      | _ -> ()
    ]} *)

module Value = Eds_value.Value
module Vtype = Eds_value.Vtype
module Adt = Eds_value.Adt
module Term = Eds_term.Term
module Lera = Eds_lera.Lera
module Schema = Eds_lera.Schema
module Relation = Eds_engine.Relation
module Database = Eds_engine.Database
module Eval = Eds_engine.Eval
module Materializer = Eds_engine.Materializer
module Ast = Eds_esql.Ast
module Catalog = Eds_esql.Catalog
module Rule = Eds_rewriter.Rule
module Engine = Eds_rewriter.Engine
module Optimizer = Eds_rewriter.Optimizer
module Obs = Eds_obs.Obs

type t

val create : ?config:Optimizer.config -> unit -> t

val catalog : t -> Catalog.t
val database : t -> Database.t

val generation : t -> int
(** Plan-cache epoch: bumped by every change that can alter what a
    SELECT plans to — {!set_config}, {!set_rewriting}, {!set_adaptive},
    {!add_rules}, {!set_program}, catalog DDL, {!register_function},
    {!register_method}, {!add_integrity_constraint},
    {!use_enum_domains}.  A rewritten plan cached under one generation
    must be bypassed once the generation moves (the query server's
    shared plan cache keys on it).  Data changes (INSERT / DELETE /
    UPDATE) do {e not} bump it: plans are data-independent. *)

val set_config : t -> Optimizer.config -> unit
val set_rewriting : t -> bool -> unit
(** Disable/enable the rewriter entirely (queries run as translated). *)

val set_adaptive : t -> bool -> unit
(** Allocate block limits per query from its complexity
    ({!Eds_rewriter.Optimizer.adaptive_config}) — the §7 "limits adjusted
    dynamically" policy.  Off by default. *)

val set_physical : t -> Eval.Physical.t -> unit
(** Select the physical evaluation layer for subsequent statements —
    [Indexed] (the default: hash joins, set-backed relations), [Naive]
    (full cartesian enumeration, the golden reference), or [Parallel]
    (the indexed plan fanned out on a domain pool sized by
    {!set_domains}). *)

val physical : t -> Eval.Physical.t

val set_domains : t -> int -> unit
(** Worker-domain count used by the [Parallel] layer (default:
    {!Eds_engine.Domain_pool.default_size}, i.e. the [EDS_DOMAINS]
    environment variable or the hardware count).  Raises
    {!Session_error} if the count is not positive.  Ignored by the other
    layers. *)

val domains : t -> int

(** {1 Executing ESQL} *)

type result =
  | Done  (** DDL executed *)
  | Inserted of int  (** tuples inserted *)
  | Deleted of int
  | Updated of int
  | Rows of Relation.t
  | Report of string
      (** rendered EXPLAIN / EXPLAIN ANALYZE output (never WAL-logged) *)

exception Session_error of string
(** Wraps parse, type, schema and evaluation errors with context. *)

val exec : t -> Ast.stmt -> result
val exec_string : t -> string -> result
(** One statement. *)

val exec_script : t -> string -> result list
(** A [;]-separated script. *)

val query : t -> string -> Relation.t
(** [exec_string] specialised to SELECT; raises {!Session_error} on
    anything else. *)

(** {1 Inspecting the rewriter} *)

type plan = {
  translated : Lera.rel;  (** canonical LERA straight out of translation *)
  rewritten : Lera.rel;  (** after the rule program *)
  rewrite_stats : Engine.stats;
  parse_s : float;  (** parse time, when the statement came in as text *)
  translate_s : float;
  rewrite_s : float;
  trace : Obs.event list;
      (** trace events captured while planning (translate + rewrite
          phases, per-block and per-rule spans).  Empty unless a trace
          sink is installed ({!Eds_obs.Obs.set_sink}). *)
}

val explain : t -> string -> plan
(** Translate and rewrite a SELECT without executing it. *)

(** {1 Observability} *)

val eval_stats : t -> Eval.stats
(** Evaluator work counters accumulated over every statement executed by
    this session. *)

val last_rewrite_stats : t -> Engine.stats option
(** Rewrite statistics of the most recently planned SELECT, if any. *)

val statements_run : t -> int
(** Number of statements submitted through {!exec} (and wrappers). *)

val reset_stats : t -> unit
(** Zero {!eval_stats}, {!statements_run} and the last rewrite stats.
    {!generation} and {!data_generation} are integrity markers and are
    deliberately untouched (the [STATS RESET] wire command and the
    [.stats reset] directive call this). *)

val record_external_execution : t -> Eval.stats -> unit
(** Fold the work of a statement executed outside {!exec} — e.g. a
    cached-plan execution by the query server, which skips
    parse/translate/rewrite entirely — into {!eval_stats} and
    {!statements_run}. *)

val snapshot_db : t -> Database.t
(** An O(1) immutable snapshot of the database ({!Eds_engine.Database.snapshot}):
    SELECTs evaluated against it need no locking at all — the query
    server's lock-free read path. *)

val data_generation : t -> int
(** The database's data epoch ({!Eds_engine.Database.data_generation}):
    bumped by every INSERT / DELETE / UPDATE / DDL / object mutation.
    Orthogonal to {!generation}, which tracks {e plan-affecting} changes
    only. *)

val run_plan : ?stats:Eval.stats -> ?db:Database.t -> t -> Lera.rel -> Relation.t
(** Evaluate a rewritten plan with the session's physical layer and
    domain count.  [db] (default: the live database) lets the caller
    evaluate against a {!snapshot_db} instead. *)

val estimate : t -> Lera.rel -> Eds_lera.Cost.t
(** Static cost estimate against the live base-relation cardinalities. *)

(** {1 Materialized views} *)

val mviews : t -> Materializer.t
(** The session's materialized-view registry.  [CREATE MATERIALIZED VIEW]
    registers a view and stores its initial extent; INSERT / DELETE /
    UPDATE maintain every dependent extent incrementally (semi-naive
    delta propagation for insertions, delete-and-rederive for deletions)
    and install base change + extents under a single atomic publish,
    falling back to a full recompute when maintenance is estimated more
    expensive than {!estimate} of the definition; [REFRESH <view>] (or
    the REPL's [.refresh]) forces the recompute. *)

val mv_stats : t -> Materializer.stats
(** Counters of the registry: maintenance runs, fallback recomputes,
    refreshes, delta tuples, last full (re)compute time. *)

val fix_cache_stats : t -> int * int
(** [(entries, invalidations)] of the session's shared closed-fixpoint
    memo (see {!Eds_engine.Eval.Shared_fix_cache}): entries currently
    cached, and entries evicted because a relation they read was
    replaced by DML. *)

(** {1 Extending the optimizer (the DBI interface, §4 / §6.1)} *)

val add_integrity_constraint : t -> string -> unit
(** Declare a Figure-10 constraint, e.g.
    ["F(x) / ISA(x, Point) --> F(x) AND ABS(x) > 0"]. *)

val use_enum_domains : t -> unit
(** Derive a domain constraint for every declared enumeration. *)

val add_rules : t -> block:string -> ?limit:int option -> string -> unit
(** Parse rule text and append it as a new block named [block] at the end
    of the current program (or extend the block if it exists). *)

val set_program : t -> Rule.program -> unit
val program : t -> Rule.program

val check_program : t -> Eds_rewriter.Rule_analysis.warning list
(** Termination warnings (§4.2) for the current rule program; also
    logged automatically by {!add_rules}. *)

val register_function : t -> Adt.entry -> unit
(** Extend the ADT function library — available immediately in queries,
    rules and constant folding. *)

val register_method : t -> string -> Engine.method_fn -> unit
(** Register an external method usable from rule text. *)

(** {1 Objects} *)

val new_object : t -> Value.t -> Value.t
(** Allocate an object in the store; returns its OID value. *)
