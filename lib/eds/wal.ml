(* Append-only write-ahead log with CRC-framed records, and the
   checkpoint/recovery manager pairing one log with one database dump.

   Frame layout (little-endian):

     [payload length : 4 bytes] [CRC-32 of payload : 4 bytes] [payload]

   Appends are flushed and (by default) fsync'd before the caller's
   statement is acknowledged, so a committed write survives `kill -9`.
   Recovery walks frames from the start and stops at the first torn or
   corrupt one — a crash mid-append loses at most the unacknowledged
   tail, never an acknowledged record; opening the log for append
   truncates that tail away.

   The manager couples the log to a checkpoint file through an epoch
   number: the checkpoint dump carries `-- wal epoch N` and the log's
   first record is the control payload `--epoch N`.  A checkpoint
   writes the new dump (atomically, epoch N+1) before truncating the
   log, so a crash between the two leaves an epoch-N log next to an
   epoch-N+1 checkpoint; recovery sees the mismatch and discards the
   stale log instead of replaying statements the checkpoint already
   contains (replay of a non-idempotent UPDATE twice would corrupt). *)

exception Wal_error of string

let error fmt = Fmt.kstr (fun s -> raise (Wal_error s)) fmt

module Metrics = Eds_obs.Metrics

(* always-on durability telemetry; the record/byte counters are
   data-integrity markers and survive STATS RESET *)
let m_fsync =
  Metrics.histogram ~help:"WAL fsync latency in seconds"
    "eds_wal_fsync_duration_seconds"

let m_records =
  Metrics.counter ~help:"Statements appended to the WAL" ~permanent:true
    "eds_wal_records_total"

let m_bytes =
  Metrics.counter ~help:"Framed bytes appended to the WAL" ~permanent:true
    "eds_wal_bytes_total"

let m_checkpoints =
  Metrics.counter ~help:"Checkpoints taken" ~permanent:true
    "eds_wal_checkpoints_total"

(* group commit: [fsyncs ≤ commits] always; the gap is the batching win *)
let m_fsyncs =
  Metrics.counter ~help:"WAL fsyncs performed (group commit batches commits)"
    ~permanent:true "eds_wal_fsyncs_total"

let m_commits =
  Metrics.counter ~help:"Commits acknowledged durable by the WAL"
    ~permanent:true "eds_wal_commits_total"

(* -- CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) ---------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl) in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* -- framing -------------------------------------------------------------- *)

let header_len = 8
let max_payload = 1 lsl 26  (* 64 MiB: any larger length field is corruption *)

let frame payload =
  let n = String.length payload in
  if n > max_payload then error "record of %d bytes exceeds the frame limit" n;
  let b = Bytes.create (header_len + n) in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Bytes.set_int32_le b 4 (crc32 payload);
  Bytes.blit_string payload 0 b header_len n;
  b

(* -- read-only scan ------------------------------------------------------- *)

type scan_result = {
  applied : int;  (** records delivered to the callback *)
  valid_bytes : int;  (** prefix of the file covered by intact frames *)
  torn_bytes : int;  (** trailing bytes past the last intact frame *)
}

let read_file path =
  let ic = In_channel.open_bin path in
  Fun.protect ~finally:(fun () -> In_channel.close ic) (fun () ->
      In_channel.input_all ic)

(* Walk intact frames, calling [f] on each payload; stop cleanly at the
   first short or corrupt frame.  [f] may raise [Exit] to stop early
   (the scan result still reports the full intact prefix). *)
let scan path f =
  if not (Sys.file_exists path) then { applied = 0; valid_bytes = 0; torn_bytes = 0 }
  else begin
    let data = read_file path in
    let len = String.length data in
    let applied = ref 0 in
    let pos = ref 0 in
    let stopped = ref false in
    let intact = ref true in
    while !intact && !pos + header_len <= len do
      let b = Bytes.unsafe_of_string data in
      let plen = Int32.to_int (Bytes.get_int32_le b !pos) in
      let crc = Bytes.get_int32_le b (!pos + 4) in
      if plen < 0 || plen > max_payload || !pos + header_len + plen > len then
        intact := false
      else begin
        let payload = String.sub data (!pos + header_len) plen in
        if crc32 payload <> crc then intact := false
        else begin
          pos := !pos + header_len + plen;
          if not !stopped then begin
            match f payload with
            | () -> incr applied
            | exception Exit -> stopped := true
          end
        end
      end
    done;
    { applied = !applied; valid_bytes = !pos; torn_bytes = len - !pos }
  end

(* -- the append handle ---------------------------------------------------- *)

type t = {
  fd : Unix.file_descr;
  wal_path : string;
  sync : bool;
  lock : Mutex.t;  (* serializes appends and truncation *)
  mutable records : int;  (* intact records currently in the file *)
  mutable bytes : int;  (* bytes of intact frames currently in the file *)
  (* group commit state.  [seq] is a monotone append watermark
     (incremented under [lock], never reset); [synced] is the highest
     watermark known durable.  One committer at a time elects itself
     fsync leader; the others wait on [cond] and are acknowledged in
     bulk when the leader's single fsync covers their watermark. *)
  sync_lock : Mutex.t;
  cond : Condition.t;
  mutable seq : int;
  mutable synced : int;
  mutable leader : bool;  (* an fsync is in flight *)
  mutable n_fsyncs : int;
  mutable n_commits : int;
}

let write_all fd b =
  let n = Bytes.length b in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write fd b !written (n - !written)
  done

let open_log ?(sync = true) path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  match scan path ignore with
  | { valid_bytes; torn_bytes; applied } ->
    (* drop any torn tail left by a crash mid-append *)
    if torn_bytes > 0 then Unix.ftruncate fd valid_bytes;
    ignore (Unix.lseek fd valid_bytes Unix.SEEK_SET);
    {
      fd;
      wal_path = path;
      sync;
      lock = Mutex.create ();
      records = applied;
      bytes = valid_bytes;
      sync_lock = Mutex.create ();
      cond = Condition.create ();
      seq = 0;
      synced = 0;
      leader = false;
      n_fsyncs = 0;
      n_commits = 0;
    }
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Write one frame without waiting for durability; returns the append
   watermark to hand to {!sync_to} once the caller is ready to commit
   (typically after releasing whatever coarse lock serialized it). *)
let append_nosync t payload =
  locked t (fun () ->
      let b = frame payload in
      write_all t.fd b;
      t.records <- t.records + 1;
      t.bytes <- t.bytes + Bytes.length b;
      t.seq <- t.seq + 1;
      Metrics.Counter.incr m_records;
      Metrics.Counter.add m_bytes (Bytes.length b);
      t.seq)

let do_fsync t =
  let t0 = Unix.gettimeofday () in
  Unix.fsync t.fd;
  Metrics.Histogram.observe m_fsync (Unix.gettimeofday () -. t0);
  Metrics.Counter.incr m_fsyncs

(* Group commit: make everything up to watermark [w] durable with as
   few fsyncs as the arrival pattern allows.  The first committer to
   find no fsync in flight becomes leader; before syncing it takes the
   append lock once — waiting out any in-flight append, so the batch
   absorbs every record already written — reads the current watermark,
   and its single fsync then covers every waiter at or below it.
   Waiters blocked on [cond] re-check after each broadcast and a
   late-arriving one simply becomes the next leader.  On a log opened
   with [~sync:false] this only counts the commit. *)
let sync_to t w =
  Mutex.lock t.sync_lock;
  if t.sync then begin
    let rec ensure () =
      if t.synced >= w then ()
      else if t.leader then begin
        Condition.wait t.cond t.sync_lock;
        ensure ()
      end
      else begin
        t.leader <- true;
        Mutex.unlock t.sync_lock;
        let finish () =
          Mutex.lock t.sync_lock;
          t.leader <- false;
          Condition.broadcast t.cond
        in
        (match locked t (fun () -> t.seq) with
         | target ->
           (match do_fsync t with
            | () ->
              finish ();
              t.n_fsyncs <- t.n_fsyncs + 1;
              if target > t.synced then t.synced <- target
            | exception e -> finish (); Mutex.unlock t.sync_lock; raise e)
         | exception e -> finish (); Mutex.unlock t.sync_lock; raise e);
        ensure ()
      end
    in
    ensure ()
  end;
  t.n_commits <- t.n_commits + 1;
  Metrics.Counter.incr m_commits;
  Mutex.unlock t.sync_lock

(* durable on return, batching with any concurrent committer *)
let append t payload = sync_to t (append_nosync t payload)

let fsync t =
  let w =
    locked t (fun () ->
        Unix.fsync t.fd;
        t.seq)
  in
  Mutex.lock t.sync_lock;
  if w > t.synced then t.synced <- w;
  Condition.broadcast t.cond;
  Mutex.unlock t.sync_lock

let reset t =
  let w =
    locked t (fun () ->
        Unix.ftruncate t.fd 0;
        ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
        Unix.fsync t.fd;
        t.records <- 0;
        t.bytes <- 0;
        t.seq)
  in
  (* everything at or below the truncation point is accounted for by
     the checkpoint that triggered the reset: release any waiter *)
  Mutex.lock t.sync_lock;
  if w > t.synced then t.synced <- w;
  Condition.broadcast t.cond;
  Mutex.unlock t.sync_lock

let fsyncs t = t.n_fsyncs
let commits t = t.n_commits

let records t = t.records
let bytes t = t.bytes
let path t = t.wal_path
let close t = locked t (fun () -> try Unix.close t.fd with Unix.Unix_error _ -> ())

(* -- checkpoint / recovery manager ---------------------------------------- *)

module Manager = struct
  let wal_path db = db ^ ".wal"

  let epoch_line n = Printf.sprintf "-- wal epoch %d" n
  let epoch_control n = Printf.sprintf "--epoch %d" n

  let is_control payload =
    String.length payload >= 2 && String.sub payload 0 2 = "--"

  let parse_epoch_control payload =
    match String.split_on_char ' ' (String.trim payload) with
    | [ "--epoch"; n ] -> int_of_string_opt n
    | _ -> None

  (* the epoch recorded in a checkpoint dump; 0 for dumps written
     outside the manager (plain .save) or a missing file *)
  let checkpoint_epoch_of_text text =
    let lines = String.split_on_char '\n' text in
    List.fold_left
      (fun acc line ->
        match String.split_on_char ' ' (String.trim line) with
        | [ "--"; "wal"; "epoch"; n ] -> Option.value (int_of_string_opt n) ~default:acc
        | _ -> acc)
      0 lines

  type handle = {
    wal : t;
    db_path : string;
    mutable epoch : int;
    mutable replayed : int;  (* statements re-executed during recovery *)
    mutable last_checkpoint : float;  (* Unix time of boot or last checkpoint *)
  }

  type stats = {
    wal_records : int;  (** statements in the log (control frame excluded) *)
    wal_bytes : int;
    epoch : int;
    replayed : int;
    checkpoint_age_s : float;
    fsyncs : int;  (** fsyncs performed on this log since open *)
    commits : int;  (** commits acknowledged durable since open *)
  }

  let recover ?(sync = true) ~db () =
    let checkpoint_text =
      if Sys.file_exists db then Some (read_file db) else None
    in
    let session =
      match checkpoint_text with
      | Some text -> Storage.restore text
      | None -> Session.create ()
    in
    let epoch =
      match checkpoint_text with
      | Some text -> checkpoint_epoch_of_text text
      | None -> 0
    in
    let wal_file = wal_path db in
    (* replay intact statements, but only if the log belongs to this
       checkpoint epoch: a stale log (crash after checkpoint rename,
       before truncate) holds statements the checkpoint already has *)
    let replayed = ref 0 in
    let stale = ref false in
    let first = ref true in
    ignore
      (scan wal_file (fun payload ->
           if !first then begin
             first := false;
             match parse_epoch_control payload with
             | Some n when n = epoch -> ()
             | Some _ -> stale := true; raise Exit
             | None ->
               (* headerless log: only trust it against an epoch-0
                  (manager-less or missing) checkpoint *)
               if epoch <> 0 then begin stale := true; raise Exit end
               else begin
                 ignore (Session.exec_string session payload);
                 incr replayed
               end
           end
           else if not (is_control payload) then begin
             ignore (Session.exec_string session payload);
             incr replayed
           end));
    let wal = open_log ~sync wal_file in
    if !stale then reset wal;
    if records wal = 0 then append wal (epoch_control epoch);
    let handle =
      { wal; db_path = db; epoch; replayed = !replayed; last_checkpoint = Unix.gettimeofday () }
    in
    (session, handle, !replayed)

  let log h stmt = append h.wal stmt
  let log_nosync h stmt = append_nosync h.wal stmt
  let sync h w = sync_to h.wal w

  let checkpoint (h : handle) session =
    let next = h.epoch + 1 in
    let text = Storage.dump session ^ epoch_line next ^ "\n" in
    Storage.atomic_write ~fsync:h.wal.sync ~path:h.db_path (fun oc ->
        Out_channel.output_string oc text);
    (* only after the new dump is durably in place may the log shrink *)
    reset h.wal;
    append h.wal (epoch_control next);
    h.epoch <- next;
    h.last_checkpoint <- Unix.gettimeofday ();
    Metrics.Counter.incr m_checkpoints

  let stats (h : handle) =
    {
      wal_records = max 0 (records h.wal - 1);  (* minus the epoch frame *)
      wal_bytes = bytes h.wal;
      epoch = h.epoch;
      replayed = h.replayed;
      checkpoint_age_s = Unix.gettimeofday () -. h.last_checkpoint;
      fsyncs = fsyncs h.wal;
      commits = commits h.wal;
    }

  let db_path h = h.db_path
  let close h = close h.wal
end
