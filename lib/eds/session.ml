module Value = Eds_value.Value
module Vtype = Eds_value.Vtype
module Adt = Eds_value.Adt
module Term = Eds_term.Term
module Lera = Eds_lera.Lera
module Schema = Eds_lera.Schema
module Relation = Eds_engine.Relation
module Database = Eds_engine.Database
module Materializer = Eds_engine.Materializer
module Eval = Eds_engine.Eval
module Expr_eval = Eds_engine.Expr_eval
module Ast = Eds_esql.Ast
module Parser = Eds_esql.Parser
module Lexer = Eds_esql.Lexer
module Catalog = Eds_esql.Catalog
module Translate = Eds_esql.Translate
module Rule = Eds_rewriter.Rule
module Rule_parser = Eds_rewriter.Rule_parser
module Engine = Eds_rewriter.Engine
module Optimizer = Eds_rewriter.Optimizer
module Obs = Eds_obs.Obs
module Metrics = Eds_obs.Metrics

(* always-on per-phase latency histograms (paper pipeline: parse →
   translate → rewrite → execute), shared by every session in the
   process; the slow-query log and METRICS PROM read these back *)
let m_phase p =
  Metrics.histogram ~help:"Pipeline phase latency in seconds"
    ~labels:[ ("phase", p) ]
    "eds_phase_duration_seconds"

let m_parse = m_phase "parse"
let m_translate = m_phase "translate"
let m_rewrite = m_phase "rewrite"
let m_execute = m_phase "execute"

let m_statements =
  Metrics.counter ~help:"Statements executed by sessions"
    "eds_session_statements_total"

type t = {
  cat : Catalog.t;
  db : Database.t;
  mutable config : Optimizer.config;
  mutable rule_program : Rule.program;
  mutable rewriting : bool;
  mutable adaptive : bool;
  mutable physical : Eval.Physical.t;
  mutable domains : int;  (** pool size used by {!Eval.Physical.Parallel} *)
  mutable semantic_constraints : (string * Term.t) list;
  mutable extra_methods : (string * Engine.method_fn) list;
  mviews : Materializer.t;  (** materialized views and their extents *)
  fix_cache : Eval.Shared_fix_cache.t;
      (** cross-statement closed-fixpoint memo, validated per-relation
          against the copy-on-write database — DML invalidates only the
          fixpoints that read the written relation *)
  eval_stats : Eval.stats;  (** cumulative over every executed statement *)
  mutable last_rewrite_stats : Engine.stats option;
  mutable statements_run : int;
  mutable last_parse_s : float;
      (** parse time of the statement currently being executed, set by
          {!exec_string} so {!plan_select} can fold it into the plan *)
  mutable generation : int;
      (** bumped by every change that can alter what a SELECT plans to —
          config, rule program, catalog DDL, registered functions /
          methods / constraints.  Cached rewritten plans are valid only
          within one generation (the server's plan cache keys on it). *)
}

exception Session_error of string

let error fmt = Fmt.kstr (fun s -> raise (Session_error s)) fmt

let create ?(config = Optimizer.default_config) () =
  let cat = Catalog.create () in
  let db = Database.create ~types:(Catalog.types cat) ~adts:(Catalog.adts cat) () in
  {
    cat;
    db;
    config;
    rule_program = Optimizer.program ~config ();
    rewriting = true;
    adaptive = false;
    physical = Eval.Physical.Indexed;
    domains = Eds_engine.Domain_pool.default_size ();
    semantic_constraints = [];
    extra_methods = [];
    mviews = Materializer.create ();
    fix_cache = Eval.Shared_fix_cache.create ();
    eval_stats = Eval.fresh_stats ();
    last_rewrite_stats = None;
    statements_run = 0;
    last_parse_s = 0.;
    generation = 0;
  }

let catalog s = s.cat
let database s = s.db
let generation s = s.generation

let invalidate_plans s =
  s.generation <- s.generation + 1;
  (* memoized fixpoint results stay {e correct} across plan changes, but
     the layers' work counters must remain comparable: start cold *)
  Eval.Shared_fix_cache.clear s.fix_cache

let set_config s config =
  s.config <- config;
  s.rule_program <- Optimizer.program ~config ();
  invalidate_plans s

let set_rewriting s flag =
  s.rewriting <- flag;
  invalidate_plans s

let set_adaptive s flag =
  s.adaptive <- flag;
  invalidate_plans s
let set_physical s p =
  s.physical <- p;
  (* results memoized under another layer would make this layer's
     counters incomparable to a cold run *)
  Eval.Shared_fix_cache.clear s.fix_cache

let physical s = s.physical

let set_domains s d =
  if d < 1 then error "domains must be >= 1 (got %d)" d;
  s.domains <- d;
  Eval.Shared_fix_cache.clear s.fix_cache

let domains s = s.domains

(* the catalog owns types and ADTs; keep the database's view in sync *)
let sync s =
  Database.set_types s.db (Catalog.types s.cat);
  Database.set_adts s.db (Catalog.adts s.cat)

let make_ctx s =
  Optimizer.make_ctx
    ~semantic_constraints:s.semantic_constraints
    ~extra_methods:s.extra_methods
    (Catalog.schema_env s.cat)

type result =
  | Done
  | Inserted of int
  | Deleted of int
  | Updated of int
  | Rows of Relation.t
  | Report of string

type plan = {
  translated : Lera.rel;
  rewritten : Lera.rel;
  rewrite_stats : Engine.stats;
  parse_s : float;
  translate_s : float;
  rewrite_s : float;
  trace : Obs.event list;
      (** the trace events emitted while planning this query; empty when
          tracing is off *)
}

let wrap_errors f =
  try f () with
  | Lexer.Lex_error (msg, pos) -> error "syntax error at offset %d: %s" pos msg
  | Parser.Parse_error msg -> error "parse error: %s" msg
  | Catalog.Catalog_error msg -> error "catalog error: %s" msg
  | Translate.Type_error msg -> error "type error: %s" msg
  | Schema.Schema_error msg -> error "schema error: %s" msg
  | Engine.Rewrite_error msg -> error "rewrite error: %s" msg
  | Eval.Eval_error msg -> error "evaluation error: %s" msg
  | Expr_eval.Eval_error msg -> error "evaluation error: %s" msg
  | Rule_parser.Rule_parse_error e ->
    error "rule error: %s" (Rule_parser.error_to_string e)

let plan_select ?(parse_s = 0.) s (sel : Ast.select) : plan =
  let (translated, rewritten, stats, translate_s, rewrite_s), events =
    Obs.with_collector @@ fun () ->
    let t0 = Obs.now () in
    let translated =
      Obs.span ~cat:"pipeline" "translate" (fun () -> Translate.select s.cat sel)
    in
    let t1 = Obs.now () in
    if not s.rewriting then
      (translated, translated, Engine.fresh_stats (), t1 -. t0, 0.)
    else begin
      let stats = Engine.fresh_stats () in
      let program =
        if s.adaptive then
          Optimizer.program ~config:(Optimizer.adaptive_config translated) ()
        else s.rule_program
      in
      let rewritten =
        Obs.span ~cat:"pipeline" "rewrite" (fun () ->
            Optimizer.rewrite ~program ~stats (make_ctx s) translated)
      in
      (translated, rewritten, stats, t1 -. t0, Obs.now () -. t1)
    end
  in
  Metrics.Histogram.observe m_translate translate_s;
  Metrics.Histogram.observe m_rewrite rewrite_s;
  s.last_rewrite_stats <- Some stats;
  { translated; rewritten; rewrite_stats = stats; parse_s; translate_s;
    rewrite_s; trace = events }

let snapshot_db s = Database.snapshot s.db
let data_generation s = Database.data_generation s.db

let run_plan ?stats ?db s rel =
  let db = Option.value db ~default:s.db in
  wrap_errors (fun () ->
      Eval.run ~physical:s.physical ~domains:s.domains ?stats
        ~fix_cache:s.fix_cache db rel)

let estimate s rel =
  let card name =
    Option.map Relation.cardinality (Database.relation_opt s.db name)
  in
  Eds_lera.Cost.estimate ~relation_cardinality:card (Catalog.schema_env s.cat) rel

let mviews s = s.mviews
let mv_stats s = Materializer.stats s.mviews

let fix_cache_stats s =
  (Eval.Shared_fix_cache.size s.fix_cache,
   Eval.Shared_fix_cache.invalidations s.fix_cache)

(* Install a base-relation change together with every maintained
   materialized extent under one publish: readers (and the plan cache,
   which keys on the data generation) see the statement atomically. *)
let apply_dml s ~table ~before ~after =
  let updates =
    Materializer.apply s.mviews ~physical:s.physical ~domains:s.domains
      ~stats:s.eval_stats
      ~recompute_cost:(fun rel -> (estimate s rel).Eds_lera.Cost.cost)
      s.db ~table ~before ~after
  in
  Database.replace_many s.db updates

(* the plan halves of an EXPLAIN report, shaped like the REPL's
   .explain output so both surfaces read the same *)
let render_plan s (p : plan) =
  let buf = Buffer.create 256 in
  let ppf = Fmt.with_buffer buf in
  let side label rel =
    if Lera.operator_count rel <= 3 then
      Fmt.pf ppf "%s: %a@.            (%a)@." label Lera.pp rel Eds_lera.Cost.pp
        (estimate s rel)
    else
      Fmt.pf ppf "%s: (%a)@.%a" label Eds_lera.Cost.pp (estimate s rel)
        Lera.pp_tree rel
  in
  side "translated" p.translated;
  side "rewritten " p.rewritten;
  Fmt.pf ppf "rewriting : %a@." Engine.pp_stats p.rewrite_stats;
  Fmt.flush ppf ();
  Buffer.contents buf

(* EXPLAIN ANALYZE labels scans of materialized extents [mview:NAME] so
   a plan reading a stored extent is distinguishable from a base scan *)
let rec tag_mv_scans s (r : Eval.node_report) : Eval.node_report =
  let op =
    match String.index_opt r.Eval.op ':' with
    | Some i
      when String.sub r.Eval.op 0 i = "base"
           && Materializer.is_view s.mviews
                (String.sub r.Eval.op (i + 1) (String.length r.Eval.op - i - 1))
      ->
      "mview:" ^ String.sub r.Eval.op (i + 1) (String.length r.Eval.op - i - 1)
    | _ -> r.Eval.op
  in
  { r with Eval.op; Eval.children = List.map (tag_mv_scans s) r.Eval.children }

let render_analyze s (p : plan) (report : Eval.node_report) rel ~exec_s
    ~(stats : Eval.stats) =
  let report = tag_mv_scans s report in
  let buf = Buffer.create 512 in
  let ppf = Fmt.with_buffer buf in
  Fmt.pf ppf "EXPLAIN ANALYZE (physical=%s)@."
    (Eval.Physical.to_string s.physical);
  Eval.pp_report ppf report;
  Fmt.pf ppf
    "planning : parse %.3fms  translate %.3fms  rewrite %.3fms (%a)@."
    (p.parse_s *. 1000.) (p.translate_s *. 1000.) (p.rewrite_s *. 1000.)
    Engine.pp_stats p.rewrite_stats;
  Fmt.pf ppf "execution: %.3fms, %d tuple%s@." (exec_s *. 1000.)
    (Relation.cardinality rel)
    (if Relation.cardinality rel = 1 then "" else "s");
  Fmt.pf ppf "work     : %a@." Eval.pp_stats stats;
  Fmt.flush ppf ();
  Buffer.contents buf

let exec s (stmt : Ast.stmt) : result =
  wrap_errors @@ fun () ->
  s.statements_run <- s.statements_run + 1;
  Metrics.Counter.incr m_statements;
  let parse_s = s.last_parse_s in
  s.last_parse_s <- 0.;
  match stmt with
  | Ast.Create_type _ | Ast.Create_view { materialized = false; _ } ->
    Catalog.apply_ddl s.cat stmt;
    sync s;
    invalidate_plans s;
    Done
  | Ast.Create_view { name; materialized = true; _ } ->
    (* declare, translate the definition by expansion, then store and
       maintain the extent; once the schema is recorded, queries (and
       later view definitions) read the view as a stored base relation *)
    Catalog.apply_ddl s.cat stmt;
    let v =
      match Catalog.view s.cat name with
      | Some v -> v
      | None -> error "materialized view %s failed to register" name
    in
    let plan, schema = Translate.view_plan s.cat v in
    Catalog.set_view_schema s.cat name schema;
    Materializer.register s.mviews ~name ~plan ~schema;
    ignore
      (Obs.span ~cat:"pipeline" "materialize" (fun () ->
           Materializer.initialize s.mviews ~physical:s.physical
             ~domains:s.domains ~stats:s.eval_stats s.db name));
    sync s;
    invalidate_plans s;
    Done
  | Ast.Refresh name -> (
    match
      Obs.span ~cat:"pipeline" "materialize" (fun () ->
          Materializer.refresh s.mviews ~physical:s.physical ~domains:s.domains
            ~stats:s.eval_stats s.db name)
    with
    | Some _ -> Done
    | None -> error "unknown materialized view %s" name)
  | Ast.Create_table { name; columns } ->
    let schema = Catalog.declare_table s.cat ~name columns in
    Database.add_relation s.db name (Relation.empty schema);
    sync s;
    invalidate_plans s;
    Done
  | Ast.Insert { table; values } -> (
    match Catalog.table s.cat table with
    | None -> error "unknown table %s" table
    | Some schema ->
      if List.length values <> Schema.arity schema then
        error "INSERT into %s: %d values for %d columns" table (List.length values)
          (Schema.arity schema);
      let tuple =
        List.map2
          (fun (_, ty) e -> Translate.expr_to_value ~expected:ty s.cat e)
          schema values
      in
      let before = Database.relation s.db table in
      let after = Relation.make schema (tuple :: before.Relation.tuples) in
      apply_dml s ~table ~before ~after;
      Inserted 1)
  | Ast.Delete { table; where } -> (
    match Catalog.table s.cat table with
    | None -> error "unknown table %s" table
    | Some schema ->
      let qual =
        match where with
        | None -> Lera.tru
        | Some w -> fst (Translate.expr_over_table s.cat ~table w)
      in
      let rel = Database.relation s.db table in
      let keep, drop =
        List.partition
          (fun tup -> not (Expr_eval.eval_bool s.db ~inputs:[ tup ] qual))
          rel.Relation.tuples
      in
      apply_dml s ~table ~before:rel ~after:(Relation.make schema keep);
      Deleted (List.length drop))
  | Ast.Update { table; assignments; where } -> (
    match Catalog.table s.cat table with
    | None -> error "unknown table %s" table
    | Some schema ->
      let qual =
        match where with
        | None -> Lera.tru
        | Some w -> fst (Translate.expr_over_table s.cat ~table w)
      in
      let resolved =
        List.map
          (fun (col, e) ->
            let lc = String.lowercase_ascii col in
            match
              List.find_index (fun (n, _) -> String.lowercase_ascii n = lc) schema
            with
            | Some idx -> (idx, fst (Translate.expr_over_table s.cat ~table e))
            | None -> error "table %s has no column %s" table col)
          assignments
      in
      let touched = ref 0 in
      let update tup =
        if Expr_eval.eval_bool s.db ~inputs:[ tup ] qual then begin
          incr touched;
          List.mapi
            (fun idx v ->
              match List.assoc_opt idx resolved with
              | Some e -> Expr_eval.eval s.db ~inputs:[ tup ] e
              | None -> v)
            tup
        end
        else tup
      in
      let rel = Database.relation s.db table in
      apply_dml s ~table ~before:rel
        ~after:(Relation.make schema (List.map update rel.Relation.tuples));
      Updated !touched)
  | Ast.Select_stmt sel ->
    let plan = plan_select ~parse_s s sel in
    let t0 = Obs.now () in
    let rel =
      Obs.span ~cat:"pipeline" "execute" (fun () ->
          Eval.run ~physical:s.physical ~domains:s.domains ~stats:s.eval_stats
            ~fix_cache:s.fix_cache s.db plan.rewritten)
    in
    Metrics.Histogram.observe m_execute (Obs.now () -. t0);
    Rows rel
  | Ast.Explain { analyze; query } ->
    let plan = plan_select ~parse_s s query in
    if not analyze then Report (render_plan s plan)
    else begin
      let stats = Eval.fresh_stats () in
      let t0 = Obs.now () in
      let rel, report =
        Obs.span ~cat:"pipeline" "execute" (fun () ->
            Eval.run_analyzed ~physical:s.physical ~domains:s.domains ~stats
              ~fix_cache:s.fix_cache s.db plan.rewritten)
      in
      let exec_s = Obs.now () -. t0 in
      Metrics.Histogram.observe m_execute exec_s;
      Eval.add_stats s.eval_stats stats;
      Report (render_analyze s plan report rel ~exec_s ~stats)
    end

let exec_string s input =
  wrap_errors (fun () ->
      let t0 = Obs.now () in
      let stmt =
        Obs.span ~cat:"pipeline" "parse" (fun () -> Parser.parse_stmt input)
      in
      let parse_s = Obs.now () -. t0 in
      Metrics.Histogram.observe m_parse parse_s;
      s.last_parse_s <- parse_s;
      exec s stmt)

let exec_script s input =
  wrap_errors (fun () -> List.map (exec s) (Parser.parse_program input))

let query s input =
  match exec_string s input with
  | Rows rel -> rel
  | Done | Inserted _ | Deleted _ | Updated _ | Report _ ->
    error "expected a SELECT statement"

let explain s input =
  wrap_errors @@ fun () ->
  let t0 = Obs.now () in
  let stmt =
    Obs.span ~cat:"pipeline" "parse" (fun () -> Parser.parse_stmt input)
  in
  let parse_s = Obs.now () -. t0 in
  Metrics.Histogram.observe m_parse parse_s;
  match stmt with
  | Ast.Select_stmt sel | Ast.Explain { query = sel; _ } ->
    plan_select ~parse_s s sel
  | _ -> error "EXPLAIN expects a SELECT statement"

let eval_stats s = s.eval_stats
let last_rewrite_stats s = s.last_rewrite_stats
let statements_run s = s.statements_run

let record_external_execution s stats =
  s.statements_run <- s.statements_run + 1;
  Metrics.Counter.incr m_statements;
  Eval.add_stats s.eval_stats stats

(* STATS RESET / .stats reset: zero the cumulative work counters; the
   generations (plan + data epochs) are integrity markers and survive *)
let reset_stats s =
  let es = s.eval_stats in
  es.Eval.combinations <- 0;
  es.Eval.tuples_read <- 0;
  es.Eval.tuples_produced <- 0;
  es.Eval.fix_iterations <- 0;
  es.Eval.probes <- 0;
  es.Eval.builds <- 0;
  es.Eval.fix_cache_hits <- 0;
  es.Eval.fix_cache_misses <- 0;
  es.Eval.columnar_ops <- 0;
  s.statements_run <- 0;
  s.last_rewrite_stats <- None

(* -- DBI extension surface ---------------------------------------------- *)

let add_integrity_constraint s text =
  wrap_errors @@ fun () ->
  let c = Optimizer.parse_integrity_constraint text in
  s.semantic_constraints <- s.semantic_constraints @ [ c ];
  invalidate_plans s

let use_enum_domains s =
  s.semantic_constraints <-
    s.semantic_constraints @ Optimizer.enum_domain_constraints (Catalog.types s.cat);
  invalidate_plans s

let add_rules s ~block ?(limit = None) text =
  wrap_errors @@ fun () ->
  let rules = Rule_parser.parse_rules text in
  let blocks = s.rule_program.Rule.blocks in
  let extended =
    if List.exists (fun b -> b.Rule.block_name = block) blocks then
      List.map
        (fun b ->
          if b.Rule.block_name = block then { b with Rule.rules = b.Rule.rules @ rules }
          else b)
        blocks
    else blocks @ [ { Rule.block_name = block; rules; limit } ]
  in
  s.rule_program <- { s.rule_program with Rule.blocks = extended };
  invalidate_plans s;
  (* §4.2: warn the DBI when a new rule may loop under the block's limit *)
  List.iter
    (fun w ->
      Logs.warn (fun m ->
          m "%a" Eds_rewriter.Rule_analysis.pp_warning w))
    (Eds_rewriter.Rule_analysis.check_program s.rule_program)

let set_program s program =
  s.rule_program <- program;
  invalidate_plans s

let program s = s.rule_program

let check_program s = Eds_rewriter.Rule_analysis.check_program s.rule_program

let register_function s entry =
  Catalog.set_adts s.cat (Adt.register (Catalog.adts s.cat) entry);
  sync s;
  invalidate_plans s

let register_method s name fn =
  s.extra_methods <- (name, fn) :: s.extra_methods;
  invalidate_plans s

let new_object s v = Database.new_object s.db v
