(** Append-only write-ahead log with CRC-framed records, and the
    checkpoint/recovery {!Manager} used by the [edsd] daemon.

    Every committed DML/DDL statement is framed as
    [length (4 bytes LE) · CRC-32 (4 bytes LE) · payload], flushed and
    fsync'd before the statement is acknowledged.  Recovery replays
    intact frames in order and stops at the first torn or corrupt one,
    so a crash — even [kill -9] mid-append — loses at most the
    unacknowledged tail.  {!Storage.save} through
    {!Manager.checkpoint} compacts the log: the dump is written
    atomically first, then the log is truncated, and an epoch number
    shared by both files lets recovery reject a stale log if the crash
    lands between those two steps. *)

exception Wal_error of string

val crc32 : string -> int32
(** CRC-32 (IEEE, as used by gzip) of a string — exposed for tests. *)

(** {1 Low-level framed log} *)

type t
(** An open append handle. *)

val open_log : ?sync:bool -> string -> t
(** Open (creating if missing) a log for appending.  Scans existing
    frames and truncates any torn tail left by a crash mid-append.
    [sync] (default [true]) makes every {!append} fsync. *)

val append : t -> string -> unit
(** Frame, write, flush — and, when the log is in sync mode, wait for
    durability through the group-commit machinery (equivalent to
    {!append_nosync} followed by {!sync_to}, so concurrent appenders
    share fsyncs).  Thread-safe.  Raises {!Wal_error} on oversized
    payloads. *)

val append_nosync : t -> string -> int
(** Frame, write, flush — but do {e not} wait for durability.  Returns
    the record's append watermark; the statement may only be
    acknowledged after [sync_to] with that watermark returns.  Use this
    to keep the fsync wait outside whatever coarse lock serializes
    appends, so concurrent committers batch into one fsync. *)

val sync_to : t -> int -> unit
(** [sync_to t w] blocks until every record at or below watermark [w]
    is durable.  Concurrent callers elect one fsync leader: the leader
    waits out any in-flight append (so the batch absorbs every record
    already written), issues a single fsync covering the current
    watermark, and wakes every waiting committer it covered — [n]
    concurrent commits cost one or two fsyncs, not [n].  On a log
    opened with [~sync:false] this returns immediately (it still counts
    the commit). *)

val fsync : t -> unit
(** Explicit durability point for logs opened with [~sync:false]. *)

val fsyncs : t -> int
(** Fsyncs performed on this log since open (group commit makes this
    lag {!commits} under concurrency). *)

val commits : t -> int
(** Commits acknowledged durable ({!append} / {!sync_to} returns). *)

val reset : t -> unit
(** Truncate to empty (the checkpoint compaction step). *)

val records : t -> int
(** Intact records currently in the file (replayed + appended). *)

val bytes : t -> int
(** Bytes of intact frames currently in the file. *)

val path : t -> string
val close : t -> unit

type scan_result = {
  applied : int;  (** records delivered to the callback *)
  valid_bytes : int;  (** prefix covered by intact frames *)
  torn_bytes : int;  (** trailing bytes past the last intact frame *)
}

val scan : string -> (string -> unit) -> scan_result
(** Read-only replay: call the function on every intact payload in
    order, stopping cleanly at the first short or CRC-corrupt frame.
    The callback may raise [Exit] to stop delivery early.  A missing
    file scans as empty. *)

(** {1 Checkpoint / recovery manager} *)

module Manager : sig
  type handle

  val wal_path : string -> string
  (** The log paired with a database dump: [db ^ ".wal"]. *)

  val recover : ?sync:bool -> db:string -> unit -> Session.t * handle * int
  (** Boot-time recovery: load the checkpoint dump at [db] (a fresh
      session if the file does not exist), replay the paired log's
      intact statements on top — unless the log's epoch shows it is
      stale, i.e. already folded into the checkpoint — and return the
      recovered session, an open handle for {!log}/{!checkpoint}, and
      the number of statements replayed. *)

  val log : handle -> string -> unit
  (** Append one committed statement; durable once this returns (in
      sync mode).  Call only after the statement has been applied
      successfully — failed statements must not replay. *)

  val log_nosync : handle -> string -> int
  (** {!Wal.append_nosync} on the managed log: append without waiting,
      returning the watermark for {!sync}.  Lets a server append inside
      its write lock (log order = commit order) but wait for the fsync
      after releasing it, so concurrent writers group-commit. *)

  val sync : handle -> int -> unit
  (** {!Wal.sync_to} on the managed log. *)

  val checkpoint : handle -> Session.t -> unit
  (** Compact: atomically write the session dump to the database path
      (tagged with the next epoch), then truncate the log.  A crash
      between the two steps is safe: recovery discards the
      stale-epoch log. *)

  type stats = {
    wal_records : int;  (** statements in the log (control frame excluded) *)
    wal_bytes : int;
    epoch : int;
    replayed : int;  (** statements re-executed by {!recover} *)
    checkpoint_age_s : float;  (** seconds since boot or last checkpoint *)
    fsyncs : int;  (** fsyncs since open; [fsyncs ≤ commits] always *)
    commits : int;  (** commits acknowledged durable since open *)
  }

  val stats : handle -> stats
  val db_path : handle -> string
  val close : handle -> unit
end
