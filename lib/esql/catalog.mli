(** The ESQL catalog: declared types, base relation schemas, views and
    their deductive (recursive) status.

    The catalog is pure schema information — tuple storage lives in
    {!Eds_engine.Database}.  DDL statements update the catalog; the
    session layer mirrors table creation into the database. *)

module Value = Eds_value.Value
module Vtype = Eds_value.Vtype
module Adt = Eds_value.Adt
module Schema = Eds_lera.Schema

type view = {
  vname : string;
  columns : string list;  (** declared column names, [] = inherit *)
  body : Ast.select;
  recursive : bool;  (** the view's FROM clauses mention the view itself *)
  materialized : bool;
      (** CREATE MATERIALIZED VIEW: queried as a stored extent, not by
          expansion *)
}

type t

exception Catalog_error of string

val create : ?adts:Adt.registry -> unit -> t
val types : t -> Vtype.env
val adts : t -> Adt.registry
val set_adts : t -> Adt.registry -> unit

val table : t -> string -> Schema.t option
(** case-insensitive lookup *)

val tables : t -> (string * Schema.t) list
val view : t -> string -> view option
val views : t -> view list

val set_view_schema : t -> string -> Schema.t -> unit
(** Record a materialized view's extent schema.  Once recorded, the view
    participates in {!schema_env} like a base relation, so the rewriter
    and cost model can type plans that reference it as [Base]. *)

val view_schema : t -> string -> Schema.t option

val schema_env : t -> Schema.env

val resolve_type : t -> Ast.type_expr -> Vtype.t
(** Resolve concrete type syntax ([CHAR], [NUMERIC], [SET OF …], declared
    names) to a type.  Raises {!Catalog_error} on unknown names. *)

val declare_type :
  t ->
  name:string ->
  is_object:bool ->
  supertype:string option ->
  Ast.type_expr ->
  unit

val declare_table : t -> name:string -> (string * Ast.type_expr) list -> Schema.t
(** Returns the resolved schema. *)

val declare_view :
  t -> ?materialized:bool -> name:string -> columns:string list -> Ast.select -> view

val apply_ddl : t -> Ast.stmt -> unit
(** Apply [Create_type]/[Create_table]/[Create_view]; other statements
    raise {!Catalog_error} (they are the session layer's job). *)
