module Value = Eds_value.Value

type type_expr =
  | T_name of string
  | T_enum of string list
  | T_tuple of (string * type_expr) list
  | T_set of type_expr
  | T_bag of type_expr
  | T_list of type_expr
  | T_array of type_expr

type expr =
  | Lit of Value.t
  | Ident of string
  | Dot of string * string
  | Call of string * expr list
  | Binop of string * expr * expr
  | Not of expr
  | Quant of quantifier * expr
  | Set_lit of expr list
  | List_lit of expr list
  | In of expr * expr

and quantifier = All | Exist

type select = {
  distinct : bool;
  proj : (expr * string option) list;
  from : (string * string option) list;
  where : expr option;
  group_by : expr list;
  having : expr option;
  union : select option;
}

type stmt =
  | Create_type of {
      name : string;
      is_object : bool;
      supertype : string option;
      definition : type_expr;
      functions : string list;
    }
  | Create_table of { name : string; columns : (string * type_expr) list }
  | Create_view of {
      name : string;
      columns : string list;
      body : select;
      materialized : bool;
    }
  | Insert of { table : string; values : expr list }
  | Delete of { table : string; where : expr option }
  | Update of { table : string; assignments : (string * expr) list; where : expr option }
  | Select_stmt of select
  | Explain of { analyze : bool; query : select }
  | Refresh of string

let comma = Fmt.any ", "

let rec pp_expr ppf = function
  | Lit v -> Value.pp ppf v
  | Ident n -> Fmt.string ppf n
  | Dot (r, a) -> Fmt.pf ppf "%s.%s" r a
  | Call (f, args) -> Fmt.pf ppf "%s(%a)" f (Fmt.list ~sep:comma pp_expr) args
  | Binop (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a op pp_expr b
  | Not e -> Fmt.pf ppf "NOT (%a)" pp_expr e
  | Quant (All, e) -> Fmt.pf ppf "ALL (%a)" pp_expr e
  | Quant (Exist, e) -> Fmt.pf ppf "EXIST (%a)" pp_expr e
  | Set_lit es -> Fmt.pf ppf "{%a}" (Fmt.list ~sep:comma pp_expr) es
  | List_lit es -> Fmt.pf ppf "[%a]" (Fmt.list ~sep:comma pp_expr) es
  | In (e, s) -> Fmt.pf ppf "(%a IN %a)" pp_expr e pp_expr s

let pp_proj_item ppf (e, alias) =
  match alias with
  | None -> pp_expr ppf e
  | Some a -> Fmt.pf ppf "%a AS %s" pp_expr e a

let pp_from_item ppf (n, alias) =
  match alias with
  | None -> Fmt.string ppf n
  | Some a -> Fmt.pf ppf "%s %s" n a

let rec pp_select ppf s =
  Fmt.pf ppf "SELECT %s%a FROM %a"
    (if s.distinct then "DISTINCT " else "")
    (Fmt.list ~sep:comma pp_proj_item)
    s.proj
    (Fmt.list ~sep:comma pp_from_item)
    s.from;
  (match s.where with
  | Some w -> Fmt.pf ppf " WHERE %a" pp_expr w
  | None -> ());
  (match s.group_by with
  | [] -> ()
  | gs -> Fmt.pf ppf " GROUP BY %a" (Fmt.list ~sep:comma pp_expr) gs);
  (match s.having with
  | Some h -> Fmt.pf ppf " HAVING %a" pp_expr h
  | None -> ());
  match s.union with
  | Some rest -> Fmt.pf ppf " UNION %a" pp_select rest
  | None -> ()

let rec pp_type_expr ppf = function
  | T_name n -> Fmt.string ppf n
  | T_enum labels ->
    Fmt.pf ppf "ENUMERATION OF (%a)"
      (Fmt.list ~sep:comma (fun ppf l -> Fmt.pf ppf "'%s'" l))
      labels
  | T_tuple fields ->
    let field ppf (n, t) = Fmt.pf ppf "%s: %a" n pp_type_expr t in
    Fmt.pf ppf "TUPLE (%a)" (Fmt.list ~sep:comma field) fields
  | T_set t -> Fmt.pf ppf "SET OF %a" pp_type_expr t
  | T_bag t -> Fmt.pf ppf "BAG OF %a" pp_type_expr t
  | T_list t -> Fmt.pf ppf "LIST OF %a" pp_type_expr t
  | T_array t -> Fmt.pf ppf "ARRAY OF %a" pp_type_expr t

let pp_stmt ppf = function
  | Create_type { name; is_object; supertype; definition; functions = _ } ->
    Fmt.pf ppf "TYPE %s%s %s%a" name
      (match supertype with Some s -> " SUBTYPE OF " ^ s | None -> "")
      (if is_object then "OBJECT " else "")
      pp_type_expr definition
  | Create_table { name; columns } ->
    let column ppf (n, t) = Fmt.pf ppf "%s: %a" n pp_type_expr t in
    Fmt.pf ppf "TABLE %s (%a)" name (Fmt.list ~sep:comma column) columns
  | Create_view { name; columns; body; materialized } ->
    Fmt.pf ppf "CREATE %sVIEW %s (%a) AS %a"
      (if materialized then "MATERIALIZED " else "")
      name
      (Fmt.list ~sep:comma Fmt.string)
      columns pp_select body
  | Insert { table; values } ->
    Fmt.pf ppf "INSERT INTO %s VALUES (%a)" table (Fmt.list ~sep:comma pp_expr) values
  | Delete { table; where } ->
    Fmt.pf ppf "DELETE FROM %s" table;
    (match where with Some w -> Fmt.pf ppf " WHERE %a" pp_expr w | None -> ())
  | Update { table; assignments; where } ->
    let assign ppf (n, e) = Fmt.pf ppf "%s = %a" n pp_expr e in
    Fmt.pf ppf "UPDATE %s SET %a" table (Fmt.list ~sep:comma assign) assignments;
    (match where with Some w -> Fmt.pf ppf " WHERE %a" pp_expr w | None -> ())
  | Select_stmt s -> pp_select ppf s
  | Explain { analyze; query } ->
    Fmt.pf ppf "EXPLAIN %s%a" (if analyze then "ANALYZE " else "") pp_select query
  | Refresh name -> Fmt.pf ppf "REFRESH %s" name
