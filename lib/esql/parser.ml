module Value = Eds_value.Value

exception Parse_error of string

let error fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

let keywords =
  [
    "SELECT"; "DISTINCT"; "FROM"; "WHERE"; "GROUP"; "BY"; "UNION"; "AS";
    "AND"; "OR"; "NOT"; "IN"; "ALL"; "EXIST"; "EXISTS";
    "CREATE"; "TYPE"; "TABLE"; "VIEW"; "INSERT"; "INTO"; "VALUES";
    "DELETE"; "UPDATE"; "SET"; "HAVING";
    "SUBTYPE"; "OF"; "OBJECT"; "TUPLE"; "SET"; "BAG"; "LIST"; "ARRAY";
    "ENUMERATION"; "FUNCTION"; "TRUE"; "FALSE"; "NULL";
    "EXPLAIN"; "ANALYZE"; "MATERIALIZED"; "REFRESH";
  ]

let reserved word = List.mem (String.uppercase_ascii word) keywords

(* mutable token cursor *)
type state = { mutable tokens : (Lexer.token * int) list }

let peek st = match st.tokens with (t, _) :: _ -> t | [] -> Lexer.EOF

let peek2 st =
  match st.tokens with _ :: (t, _) :: _ -> t | _ -> Lexer.EOF

let advance st =
  match st.tokens with
  | _ :: rest -> st.tokens <- rest
  | [] -> ()

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok =
  let t = next st in
  if t <> tok then error "expected %a but found %a" Lexer.pp_token tok Lexer.pp_token t

(* case-insensitive keyword tests *)
let is_kw word = function
  | Lexer.IDENT s -> String.uppercase_ascii s = word
  | _ -> false

let peek_kw st word = is_kw word (peek st)

let eat_kw st word =
  if peek_kw st word then begin
    advance st;
    true
  end
  else false

let expect_kw st word =
  if not (eat_kw st word) then
    error "expected %s but found %a" word Lexer.pp_token (peek st)

let ident st =
  match next st with
  | Lexer.IDENT s when not (reserved s) -> s
  | t -> error "expected an identifier, found %a" Lexer.pp_token t

let any_ident st =
  match next st with
  | Lexer.IDENT s -> s
  | t -> error "expected an identifier, found %a" Lexer.pp_token t

let comma_separated st parse =
  let rec more acc =
    if peek st = Lexer.COMMA then begin
      advance st;
      more (parse st :: acc)
    end
    else List.rev acc
  in
  more [ parse st ]

(* -- expressions ------------------------------------------------------- *)

let rec expr st = or_expr st

and or_expr st =
  let lhs = and_expr st in
  if eat_kw st "OR" then Ast.Binop ("or", lhs, or_expr st) else lhs

and and_expr st =
  let lhs = not_expr st in
  if eat_kw st "AND" then Ast.Binop ("and", lhs, and_expr st) else lhs

and not_expr st =
  if eat_kw st "NOT" then Ast.Not (not_expr st) else comparison st

and comparison st =
  let lhs = additive st in
  match peek st with
  | Lexer.EQ -> advance st; Ast.Binop ("=", lhs, additive st)
  | Lexer.NEQ -> advance st; Ast.Binop ("<>", lhs, additive st)
  | Lexer.LT -> advance st; Ast.Binop ("<", lhs, additive st)
  | Lexer.LE -> advance st; Ast.Binop ("<=", lhs, additive st)
  | Lexer.GT -> advance st; Ast.Binop (">", lhs, additive st)
  | Lexer.GE -> advance st; Ast.Binop (">=", lhs, additive st)
  | Lexer.IDENT s when String.uppercase_ascii s = "IN" ->
    advance st;
    Ast.In (lhs, primary st)
  | _ -> lhs

and additive st =
  let rec go lhs =
    match peek st with
    | Lexer.PLUS -> advance st; go (Ast.Binop ("+", lhs, multiplicative st))
    | Lexer.MINUS -> advance st; go (Ast.Binop ("-", lhs, multiplicative st))
    | _ -> lhs
  in
  go (multiplicative st)

and multiplicative st =
  let rec go lhs =
    match peek st with
    | Lexer.STAR -> advance st; go (Ast.Binop ("*", lhs, unary st))
    | Lexer.SLASH -> advance st; go (Ast.Binop ("/", lhs, unary st))
    | _ -> lhs
  in
  go (unary st)

and unary st =
  match peek st with
  | Lexer.MINUS ->
    advance st;
    (match unary st with
    | Ast.Lit (Value.Int i) -> Ast.Lit (Value.Int (-i))
    | Ast.Lit (Value.Real r) -> Ast.Lit (Value.Real (-.r))
    | e -> Ast.Call ("minus", [ e ]))
  | _ -> primary st

and primary st =
  match peek st with
  | Lexer.INT i -> advance st; Ast.Lit (Value.Int i)
  | Lexer.FLOAT f -> advance st; Ast.Lit (Value.Real f)
  | Lexer.STRING s -> advance st; Ast.Lit (Value.Str s)
  | Lexer.AT -> (
    advance st;
    match next st with
    | Lexer.INT i -> Ast.Lit (Value.Oid i)
    | t -> error "expected an OID number after @, found %a" Lexer.pp_token t)
  | Lexer.LBRACE ->
    advance st;
    let items = if peek st = Lexer.RBRACE then [] else comma_separated st expr in
    expect st Lexer.RBRACE;
    Ast.Set_lit items
  | Lexer.LBRACKET ->
    advance st;
    let items = if peek st = Lexer.RBRACKET then [] else comma_separated st expr in
    expect st Lexer.RBRACKET;
    Ast.List_lit items
  | Lexer.LPAREN ->
    advance st;
    let e = expr st in
    if peek st = Lexer.COMMA then begin
      (* parenthesized list: IN ('a', 'b', …) *)
      advance st;
      let rest = comma_separated st expr in
      expect st Lexer.RPAREN;
      Ast.Set_lit (e :: rest)
    end
    else begin
      expect st Lexer.RPAREN;
      e
    end
  | Lexer.IDENT s when String.uppercase_ascii s = "TRUE" ->
    advance st;
    Ast.Lit (Value.Bool true)
  | Lexer.IDENT s when String.uppercase_ascii s = "FALSE" ->
    advance st;
    Ast.Lit (Value.Bool false)
  | Lexer.IDENT s when String.uppercase_ascii s = "NULL" ->
    advance st;
    Ast.Lit Value.Null
  | Lexer.IDENT s when String.uppercase_ascii s = "ALL" && peek2 st = Lexer.LPAREN ->
    advance st;
    expect st Lexer.LPAREN;
    let e = expr st in
    expect st Lexer.RPAREN;
    Ast.Quant (Ast.All, e)
  | Lexer.IDENT s
    when (String.uppercase_ascii s = "EXIST" || String.uppercase_ascii s = "EXISTS")
         && peek2 st = Lexer.LPAREN ->
    advance st;
    expect st Lexer.LPAREN;
    let e = expr st in
    expect st Lexer.RPAREN;
    Ast.Quant (Ast.Exist, e)
  | Lexer.IDENT s when not (reserved s) -> (
    advance st;
    match peek st with
    | Lexer.LPAREN ->
      advance st;
      let args = if peek st = Lexer.RPAREN then [] else comma_separated st expr in
      expect st Lexer.RPAREN;
      Ast.Call (s, args)
    | Lexer.DOT ->
      advance st;
      Ast.Dot (s, any_ident st)
    | _ -> Ast.Ident s)
  | t -> error "unexpected %a in expression" Lexer.pp_token t

(* -- types ------------------------------------------------------------- *)

let rec type_expr st =
  if eat_kw st "ENUMERATION" then begin
    expect_kw st "OF";
    expect st Lexer.LPAREN;
    let label st' =
      match next st' with
      | Lexer.STRING s -> s
      | t -> error "expected a string label, found %a" Lexer.pp_token t
    in
    let labels = comma_separated st label in
    expect st Lexer.RPAREN;
    Ast.T_enum labels
  end
  else if eat_kw st "TUPLE" then begin
    expect st Lexer.LPAREN;
    let field st' =
      let name = ident st' in
      if peek st' = Lexer.COLON then advance st';
      (name, type_expr st')
    in
    let fields = comma_separated st field in
    expect st Lexer.RPAREN;
    Ast.T_tuple fields
  end
  else if eat_kw st "SET" then begin
    expect_kw st "OF";
    Ast.T_set (type_expr st)
  end
  else if eat_kw st "BAG" then begin
    expect_kw st "OF";
    Ast.T_bag (type_expr st)
  end
  else if eat_kw st "LIST" then begin
    expect_kw st "OF";
    Ast.T_list (type_expr st)
  end
  else if eat_kw st "ARRAY" then begin
    expect_kw st "OF";
    Ast.T_array (type_expr st)
  end
  else Ast.T_name (any_ident st)

(* -- statements -------------------------------------------------------- *)

let create_type st =
  let name = ident st in
  let supertype = if eat_kw st "SUBTYPE" then begin
      expect_kw st "OF";
      Some (ident st)
    end
    else None
  in
  let is_object = eat_kw st "OBJECT" in
  let definition = type_expr st in
  (* FUNCTION declarations: record the name, skip the parameter list *)
  let rec functions acc =
    if eat_kw st "FUNCTION" then begin
      let fname = ident st in
      expect st Lexer.LPAREN;
      let rec skip depth =
        match next st with
        | Lexer.LPAREN -> skip (depth + 1)
        | Lexer.RPAREN -> if depth > 0 then skip (depth - 1)
        | Lexer.EOF -> error "unterminated FUNCTION declaration"
        | _ -> skip depth
      in
      skip 0;
      functions (fname :: acc)
    end
    else List.rev acc
  in
  Ast.Create_type { name; is_object; supertype; definition; functions = functions [] }

let create_table st =
  let name = ident st in
  expect st Lexer.LPAREN;
  let column st' =
    let cname = ident st' in
    if peek st' = Lexer.COLON then advance st';
    (cname, type_expr st')
  in
  let columns = comma_separated st column in
  expect st Lexer.RPAREN;
  Ast.Create_table { name; columns }

let rec select st =
  expect_kw st "SELECT";
  let distinct = eat_kw st "DISTINCT" in
  let proj_item st' =
    let e = expr st' in
    let alias = if eat_kw st' "AS" then Some (ident st') else None in
    (e, alias)
  in
  let proj = comma_separated st proj_item in
  expect_kw st "FROM";
  let from_item st' =
    let name = ident st' in
    let alias =
      match peek st' with
      | Lexer.IDENT a when not (reserved a) ->
        advance st';
        Some a
      | _ -> None
    in
    (name, alias)
  in
  let from = comma_separated st from_item in
  let where = if eat_kw st "WHERE" then Some (expr st) else None in
  let group_by =
    if eat_kw st "GROUP" then begin
      expect_kw st "BY";
      comma_separated st expr
    end
    else []
  in
  let having = if eat_kw st "HAVING" then Some (expr st) else None in
  let union =
    if eat_kw st "UNION" then
      Some (if peek st = Lexer.LPAREN then parenthesized_select st else select st)
    else None
  in
  { Ast.distinct; proj; from; where; group_by; having; union }

and parenthesized_select st =
  expect st Lexer.LPAREN;
  let s = if peek st = Lexer.LPAREN then parenthesized_select st else select st in
  expect st Lexer.RPAREN;
  s

let create_view ~materialized st =
  let name = ident st in
  let columns =
    if peek st = Lexer.LPAREN then begin
      advance st;
      let cols = comma_separated st ident in
      expect st Lexer.RPAREN;
      cols
    end
    else []
  in
  expect_kw st "AS";
  let body = if peek st = Lexer.LPAREN then parenthesized_select st else select st in
  Ast.Create_view { name; columns; body; materialized }

let delete st =
  expect_kw st "FROM";
  let table = ident st in
  let where = if eat_kw st "WHERE" then Some (expr st) else None in
  Ast.Delete { table; where }

let update st =
  let table = ident st in
  expect_kw st "SET";
  let assignment st' =
    let col = ident st' in
    expect st' Lexer.EQ;
    (col, expr st')
  in
  let assignments = comma_separated st assignment in
  let where = if eat_kw st "WHERE" then Some (expr st) else None in
  Ast.Update { table; assignments; where }

let insert st =
  expect_kw st "INTO";
  let table = ident st in
  expect_kw st "VALUES";
  expect st Lexer.LPAREN;
  let values = comma_separated st expr in
  expect st Lexer.RPAREN;
  Ast.Insert { table; values }

let stmt st =
  if eat_kw st "CREATE" then begin
    if eat_kw st "TYPE" then create_type st
    else if eat_kw st "TABLE" then create_table st
    else if eat_kw st "VIEW" then create_view ~materialized:false st
    else if eat_kw st "MATERIALIZED" then begin
      expect_kw st "VIEW";
      create_view ~materialized:true st
    end
    else error "expected TYPE, TABLE, VIEW or MATERIALIZED VIEW after CREATE"
  end
  else if eat_kw st "TYPE" then create_type st
  else if eat_kw st "TABLE" then create_table st
  else if eat_kw st "INSERT" then insert st
  else if eat_kw st "DELETE" then delete st
  else if eat_kw st "UPDATE" then update st
  else if eat_kw st "REFRESH" then Ast.Refresh (ident st)
  else if eat_kw st "EXPLAIN" then begin
    let analyze = eat_kw st "ANALYZE" in
    if not (peek_kw st "SELECT") then error "EXPLAIN expects a SELECT statement";
    Ast.Explain { analyze; query = select st }
  end
  else if peek_kw st "SELECT" then Ast.Select_stmt (select st)
  else error "expected a statement, found %a" Lexer.pp_token (peek st)

(* -- entry points ------------------------------------------------------ *)

let with_state input f =
  let st = { tokens = Lexer.tokenize input } in
  let result = f st in
  if peek st = Lexer.SEMI then advance st;
  (match peek st with
  | Lexer.EOF -> ()
  | t -> error "trailing input: %a" Lexer.pp_token t);
  result

let parse_stmt input = with_state input stmt
let parse_select input = with_state input select
let parse_expr input = with_state input expr

let parse_program input =
  let st = { tokens = Lexer.tokenize input } in
  let rec go acc =
    match peek st with
    | Lexer.EOF -> List.rev acc
    | Lexer.SEMI ->
      advance st;
      go acc
    | _ -> go (stmt st :: acc)
  in
  go []
