module Value = Eds_value.Value
module Intern = Eds_value.Intern
module Vtype = Eds_value.Vtype
module Adt = Eds_value.Adt
module Schema = Eds_lera.Schema

type view = {
  vname : string;
  columns : string list;
  body : Ast.select;
  recursive : bool;
  materialized : bool;
}

type t = {
  mutable type_env : Vtype.env;
  mutable table_schemas : (string * Schema.t) list;
  mutable view_list : view list;
  mutable view_schemas : (string * Schema.t) list;
      (* materialized views whose extent schema the session has recorded;
         the rewriter and the cost model see them as base relations *)
  mutable adt_registry : Adt.registry;
  mutable enum_counter : int;
}

exception Catalog_error of string

let error fmt = Fmt.kstr (fun s -> raise (Catalog_error s)) fmt

let create ?adts () =
  {
    type_env = Vtype.empty_env;
    table_schemas = [];
    view_list = [];
    view_schemas = [];
    adt_registry = (match adts with Some r -> r | None -> Adt.builtins ());
    enum_counter = 0;
  }

let types cat = cat.type_env
let adts cat = cat.adt_registry
let set_adts cat reg = cat.adt_registry <- reg

let find_ci assoc name =
  let wanted = String.lowercase_ascii name in
  List.find_opt (fun (n, _) -> String.lowercase_ascii n = wanted) assoc

let table cat name = Option.map snd (find_ci cat.table_schemas name)
let tables cat = cat.table_schemas

let view cat name =
  let wanted = String.lowercase_ascii name in
  List.find_opt (fun v -> String.lowercase_ascii v.vname = wanted) cat.view_list

let views cat = cat.view_list

let set_view_schema cat name schema =
  cat.view_schemas <-
    (name, schema)
    :: List.filter
         (fun (n, _) ->
           String.lowercase_ascii n <> String.lowercase_ascii name)
         cat.view_schemas

let view_schema cat name = Option.map snd (find_ci cat.view_schemas name)

let schema_env cat =
  {
    Schema.types = cat.type_env;
    Schema.relations = cat.table_schemas @ cat.view_schemas;
    Schema.adts = cat.adt_registry;
  }

let rec resolve_type cat (te : Ast.type_expr) : Vtype.t =
  match te with
  | Ast.T_name n -> (
    match String.uppercase_ascii n with
    | "CHAR" | "VARCHAR" | "TEXTUAL" | "STRING" -> Vtype.String
    | "NUMERIC" | "REAL" | "FLOAT" | "DOUBLE" -> Vtype.Real
    | "INT" | "INTEGER" -> Vtype.Int
    | "BOOLEAN" | "BOOL" -> Vtype.Bool
    | _ -> (
      match Vtype.find cat.type_env n with
      | Some decl when decl.Vtype.is_object -> Vtype.Object decl.Vtype.name
      | Some decl -> Vtype.Named decl.Vtype.name
      | None -> error "unknown type %s" n))
  | Ast.T_enum labels ->
    (* anonymous enumeration: register it under a fresh name so values
       carry a nominal type; intern the labels now so enum-keyed
       relations qualify for the columnar id flavor without per-tuple
       intern misses later *)
    List.iter (fun l -> ignore (Intern.id_of_string l)) labels;
    cat.enum_counter <- cat.enum_counter + 1;
    let name = Fmt.str "enum_%d" cat.enum_counter in
    let ty = Vtype.Enum (name, labels) in
    cat.type_env <-
      Vtype.declare cat.type_env
        { Vtype.name; definition = ty; is_object = false; supertype = None };
    ty
  | Ast.T_tuple fields ->
    Vtype.Tuple (List.map (fun (n, t) -> (n, resolve_type cat t)) fields)
  | Ast.T_set t -> Vtype.Set (resolve_type cat t)
  | Ast.T_bag t -> Vtype.Bag (resolve_type cat t)
  | Ast.T_list t -> Vtype.List (resolve_type cat t)
  | Ast.T_array t -> Vtype.Array (resolve_type cat t)

let declare_type cat ~name ~is_object ~supertype te =
  let definition =
    match te with
    | Ast.T_enum labels ->
      (* parse-time interning, as for anonymous enumerations above *)
      List.iter (fun l -> ignore (Intern.id_of_string l)) labels;
      Vtype.Enum (name, labels)
    | _ -> resolve_type cat te
  in
  match
    Vtype.declare cat.type_env { Vtype.name; definition; is_object; supertype }
  with
  | env -> cat.type_env <- env
  | exception Invalid_argument msg -> error "%s" msg

let declare_table cat ~name columns =
  if Option.is_some (find_ci cat.table_schemas name) then
    error "table %s already exists" name;
  let schema = List.map (fun (n, te) -> (n, resolve_type cat te)) columns in
  cat.table_schemas <- cat.table_schemas @ [ (name, schema) ];
  schema

(* A view is recursive when its own name appears in the FROM clause of any
   arm of its body (paper §2.2, Figure 5). *)
let select_mentions name (s : Ast.select) =
  let wanted = String.lowercase_ascii name in
  let rec go (s : Ast.select) =
    List.exists (fun (n, _) -> String.lowercase_ascii n = wanted) s.Ast.from
    || match s.Ast.union with Some rest -> go rest | None -> false
  in
  go s

let declare_view cat ?(materialized = false) ~name ~columns body =
  if Option.is_some (view cat name) then error "view %s already exists" name;
  let v =
    {
      vname = name;
      columns;
      body;
      recursive = select_mentions name body;
      materialized;
    }
  in
  cat.view_list <- cat.view_list @ [ v ];
  v

let apply_ddl cat (stmt : Ast.stmt) =
  match stmt with
  | Ast.Create_type { name; is_object; supertype; definition; functions = _ } ->
    declare_type cat ~name ~is_object ~supertype definition
  | Ast.Create_table { name; columns } -> ignore (declare_table cat ~name columns)
  | Ast.Create_view { name; columns; body; materialized } ->
    ignore (declare_view cat ~materialized ~name ~columns body)
  | Ast.Insert _ | Ast.Delete _ | Ast.Update _ ->
    error "DML is handled by the session, not the catalog"
  | Ast.Select_stmt _ | Ast.Explain _ | Ast.Refresh _ ->
    error "SELECT is handled by the session, not the catalog"
