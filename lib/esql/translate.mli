(** ESQL → LERA translation with type checking (paper §3.1, §5).

    This performs the rewriter's first syntactic activity, "type checking
    function rules": it resolves column names to positional references,
    infers generic functions — the attribute-as-function sugar
    [Salary(Refactor)] becomes [project(value(Refactor), 'Salary')] — and
    inserts the necessary conversions (string literals compared against
    enumeration domains become enumeration constants).

    Views translate {e compositionally}: a view used in a FROM clause
    contributes its own translated expression as an operand, so the query
    reaching the rewriter still contains the "arbitrary processing order
    imposed by the user-written views" that the merging rules then
    normalize away.  Recursive views become [fix] operators (paper §3.2). *)

module Value = Eds_value.Value
module Lera = Eds_lera.Lera
module Schema = Eds_lera.Schema

exception Type_error of string

val select : Catalog.t -> Ast.select -> Lera.rel
(** Translate a (possibly UNION) select statement. *)

val select_schema : Catalog.t -> Ast.select -> Schema.t
(** Schema of the translation (convenience wrapper). *)

val relation_of_name : Catalog.t -> string -> Lera.rel
(** The LERA expression denoted by a table or view name: [Base] for
    tables, the translated body for views, a [Fix] for recursive views.
    Raises {!Type_error} for unknown names. *)

val schema_of_name : Catalog.t -> string -> Schema.t
(** Schema of {!relation_of_name}, with view columns renamed to the
    view's declared column names. *)

val view_plan : Catalog.t -> Catalog.view -> Lera.rel * Schema.t
(** Translate a view's {e definition} (always by expansion, even for a
    materialized view) together with its declared-column schema — the
    plan a {!Eds_engine.Materializer} stores and maintains. *)

val expr_over_table :
  Catalog.t -> table:string -> Ast.expr -> Lera.scalar * Catalog.Vtype.t
(** Translate an expression whose columns resolve against a single base
    table — the WHERE clause and SET expressions of DELETE/UPDATE. *)

val expr_to_value : ?expected:Catalog.Vtype.t -> Catalog.t -> Ast.expr -> Value.t
(** Constant-fold a literal expression (INSERT values).  [expected]
    drives enum coercion of string literals.  Raises {!Type_error} on
    non-constant expressions. *)
