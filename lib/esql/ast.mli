(** Abstract syntax of ESQL, the extended SQL of the EDS server
    (paper §2): SQL with ADT values, complex objects and deductive views.

    The grammar covers what the paper exercises: type and table creation
    (Figure 2), select-project-join queries with ADT calls (Figure 3),
    nested views with [MakeSet]/[GROUP BY] and quantifiers (Figure 4),
    and recursive union views (Figure 5). *)

module Value = Eds_value.Value

type type_expr =
  | T_name of string  (** CHAR, NUMERIC, INT, BOOLEAN or a declared type *)
  | T_enum of string list  (** ENUMERATION OF ('a', 'b', …) *)
  | T_tuple of (string * type_expr) list
  | T_set of type_expr
  | T_bag of type_expr
  | T_list of type_expr
  | T_array of type_expr

type expr =
  | Lit of Value.t
  | Ident of string  (** unqualified column *)
  | Dot of string * string  (** [FILM.Numf] *)
  | Call of string * expr list  (** ADT function or attribute-as-function *)
  | Binop of string * expr * expr  (** comparisons, arithmetic, AND, OR *)
  | Not of expr
  | Quant of quantifier * expr  (** [ALL (Salary(Actors) > 10000)] *)
  | Set_lit of expr list  (** [{'a', 'b'}] or IN-lists *)
  | List_lit of expr list
  | In of expr * expr

and quantifier = All | Exist

type select = {
  distinct : bool;
  proj : (expr * string option) list;  (** item, optional AS alias *)
  from : (string * string option) list;  (** relation or view, optional alias *)
  where : expr option;
  group_by : expr list;
  having : expr option;
      (** group predicate — an expression over the grouped columns and
          [MakeSet], like aggregate projections *)
  union : select option;  (** SELECT … UNION SELECT … *)
}

type stmt =
  | Create_type of {
      name : string;
      is_object : bool;
      supertype : string option;
      definition : type_expr;
      functions : string list;  (** declared FUNCTION names (bodies are ADTs) *)
    }
  | Create_table of { name : string; columns : (string * type_expr) list }
  | Create_view of {
      name : string;
      columns : string list;
      body : select;
      materialized : bool;
          (** CREATE MATERIALIZED VIEW: the extent is stored and
              incrementally maintained instead of expanded per query *)
    }
  | Insert of { table : string; values : expr list }
  | Delete of { table : string; where : expr option }
  | Update of { table : string; assignments : (string * expr) list; where : expr option }
  | Select_stmt of select
  | Explain of { analyze : bool; query : select }
      (** [EXPLAIN SELECT …] shows the rewritten plan; [EXPLAIN ANALYZE
          SELECT …] executes it and reports per-operator actual rows,
          work counters and elapsed time. *)
  | Refresh of string
      (** [REFRESH <view>]: force a full recompute of a materialized
          view's stored extent. *)

val pp_expr : Format.formatter -> expr -> unit
val pp_select : Format.formatter -> select -> unit
val pp_stmt : Format.formatter -> stmt -> unit
