module Value = Eds_value.Value
module Vtype = Eds_value.Vtype
module Adt = Eds_value.Adt
module Lera = Eds_lera.Lera
module Schema = Eds_lera.Schema

exception Type_error of string

let error fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

let lc = String.lowercase_ascii
let same_name a b = lc a = lc b

type input = {
  rname : string;  (** resolution name: alias or relation name *)
  schema : Schema.t;
}

type ctx = {
  catalog : Catalog.t;
  inputs : input list;  (** FROM operands, in order *)
  self : (string * Schema.t) option;  (** enclosing recursive view *)
  stack : string list;  (** views being expanded, for cycle detection *)
}

(* -- type utilities ---------------------------------------------------- *)

let expand ctx ty = Vtype.expand (Catalog.types ctx.catalog) ty

let enum_of ctx ty =
  match expand ctx ty with
  | Vtype.Enum (n, labels) -> Some (n, labels)
  | _ -> None

let element_type ctx ty = Vtype.element_type (Catalog.types ctx.catalog) ty

(* Coerce a string literal to an enumeration constant when the other side
   of a comparison (or the element type of a membership test) is an
   enumeration — the "necessary conversion functions" of §3.3. *)
let coerce_scalar ctx expected (s, ty) =
  match s, enum_of ctx expected with
  | Lera.Cst (Value.Str lit), Some (n, labels) when List.mem lit labels ->
    (Lera.Cst (Value.Enum (n, lit)), expected)
  | Lera.Cst (Value.Str lit), Some (n, _) ->
    ignore n;
    ignore lit;
    (s, ty)
  | _ -> (s, ty)

let is_collection_type ctx ty =
  match expand ctx ty with
  | Vtype.Set _ | Vtype.Bag _ | Vtype.List _ | Vtype.Array _ | Vtype.Collection _ ->
    true
  | _ -> false

let wrap_like ctx ty inner =
  match expand ctx ty with
  | Vtype.Set _ -> Vtype.Set inner
  | Vtype.Bag _ -> Vtype.Bag inner
  | Vtype.List _ -> Vtype.List inner
  | Vtype.Array _ -> Vtype.Array inner
  | _ -> inner

(* -- name resolution --------------------------------------------------- *)

let find_column ctx name =
  let hits =
    List.concat
      (List.mapi
         (fun i input ->
           List.concat
             (List.mapi
                (fun j (attr, ty) ->
                  if same_name attr name then [ (i + 1, j + 1, ty) ] else [])
                input.schema))
         ctx.inputs)
  in
  match hits with
  | [ (i, j, ty) ] -> (Lera.Col (i, j), ty)
  | [] -> error "unknown column %s" name
  | _ :: _ :: _ -> error "ambiguous column %s" name

let find_qualified ctx rel_name attr =
  let rec go i = function
    | [] -> error "unknown relation %s in column reference" rel_name
    | input :: rest ->
      if same_name input.rname rel_name then begin
        match
          List.find_index (fun (n, _) -> same_name n attr) input.schema
        with
        | Some j -> (Lera.Col (i, j + 1), snd (List.nth input.schema j))
        | None -> error "relation %s has no column %s" rel_name attr
      end
      else go (i + 1) rest
  in
  go 1 ctx.inputs

(* -- expression translation -------------------------------------------- *)

let comparison_ops = [ "="; "<>"; "<"; "<="; ">"; ">=" ]

let rec tr_expr ctx (e : Ast.expr) : Lera.scalar * Vtype.t =
  match e with
  | Ast.Lit v -> (Lera.Cst v, Vtype.type_of_value (Catalog.types ctx.catalog) v)
  | Ast.Ident n -> find_column ctx n
  | Ast.Dot (r, a) -> find_qualified ctx r a
  | Ast.Not e1 ->
    let s, _ = tr_expr ctx e1 in
    (Lera.Call ("not", [ s ]), Vtype.Bool)
  | Ast.Binop ("and", a, b) ->
    let sa, _ = tr_expr ctx a and sb, _ = tr_expr ctx b in
    (Lera.conj [ sa; sb ], Vtype.Bool)
  | Ast.Binop ("or", a, b) ->
    let sa, _ = tr_expr ctx a and sb, _ = tr_expr ctx b in
    (Lera.disj [ sa; sb ], Vtype.Bool)
  | Ast.Binop (op, a, b) when List.mem op comparison_ops ->
    let (sa, ta) = tr_expr ctx a and (sb, tb) = tr_expr ctx b in
    let sa, ta = coerce_scalar ctx tb (sa, ta) in
    let sb, tb = coerce_scalar ctx ta (sb, tb) in
    let result_ty =
      if is_collection_type ctx ta then wrap_like ctx ta Vtype.Bool
      else if is_collection_type ctx tb then wrap_like ctx tb Vtype.Bool
      else Vtype.Bool
    in
    (Lera.Call (op, [ sa; sb ]), result_ty)
  | Ast.Binop (op, a, b) ->
    let (sa, ta) = tr_expr ctx a and (sb, tb) = tr_expr ctx b in
    let ty =
      match expand ctx ta, expand ctx tb with
      | Vtype.Int, Vtype.Int -> Vtype.Int
      | _ -> Vtype.Real
    in
    (Lera.Call (op, [ sa; sb ]), ty)
  | Ast.Quant (q, e1) ->
    let s, ty = tr_expr ctx e1 in
    if not (is_collection_type ctx ty) then
      error "quantifier applied to a non-collection (%a)" Vtype.pp ty;
    let f = match q with Ast.All -> "all" | Ast.Exist -> "exist" in
    (Lera.Call (f, [ s ]), Vtype.Bool)
  | Ast.In (e1, coll) ->
    let sc, tc = tr_expr ctx coll in
    let se, te = tr_expr ctx e1 in
    let se, _ =
      match element_type ctx tc with
      | Some ety -> coerce_scalar ctx ety (se, te)
      | None -> (se, te)
    in
    (Lera.Call ("member", [ se; sc ]), Vtype.Bool)
  | Ast.Set_lit items ->
    let v = Value.set (List.map (const_value ctx) items) in
    (Lera.Cst v, Vtype.type_of_value (Catalog.types ctx.catalog) v)
  | Ast.List_lit items ->
    let v = Value.list (List.map (const_value ctx) items) in
    (Lera.Cst v, Vtype.type_of_value (Catalog.types ctx.catalog) v)
  | Ast.Call (f, args) -> tr_call ctx f args

and tr_call ctx f args =
  let targs = List.map (tr_expr ctx) args in
  let scalars = List.map fst targs in
  match Adt.find (Catalog.adts ctx.catalog) f with
  | Some entry -> (
    (* member('Adventure', Categories): coerce the element against the
       collection's element type *)
    match lc entry.Adt.name, targs with
    | "member", [ (se, te); (sc, tc) ] ->
      let se, _ =
        match element_type ctx tc with
        | Some ety -> coerce_scalar ctx ety (se, te)
        | None -> (se, te)
      in
      (Lera.Call ("member", [ se; sc ]), Vtype.Bool)
    | _ -> (Lera.Call (lc f, scalars), entry.Adt.result_type))
  | None -> (
    (* attribute-name-as-function sugar (paper §2.1 / §3.3) *)
    match targs with
    | [ (s, ty) ] -> attribute_projection ctx f (s, ty)
    | _ -> error "unknown function %s/%d" f (List.length args))

and attribute_projection ctx field (s, ty) =
  let types = Catalog.types ctx.catalog in
  (* peel a collection layer: projection maps point-wise *)
  let collection_wrap, base_ty =
    match expand ctx ty with
    | Vtype.Set e -> (Some `Set, e)
    | Vtype.Bag e -> (Some `Bag, e)
    | Vtype.List e -> (Some `List, e)
    | Vtype.Array e -> (Some `Array, e)
    | Vtype.Any | Vtype.Bool | Vtype.Int | Vtype.Real | Vtype.String
    | Vtype.Enum _ | Vtype.Tuple _ | Vtype.Collection _ | Vtype.Named _
    | Vtype.Object _ ->
      (* keep the unexpanded type: Object-ness decides VALUE insertion *)
      (None, ty)
  in
  (* objects are dereferenced with VALUE before projecting *)
  let inner, tuple_ty =
    match expand ctx base_ty with
    | Vtype.Object _ | Vtype.Tuple _ -> (
      match base_ty with
      | Vtype.Object n -> (Lera.Call ("value", [ s ]), Vtype.expand types (Vtype.Object n))
      | _ -> (s, expand ctx base_ty))
    | other -> error "cannot apply attribute %s to %a" field Vtype.pp other
  in
  let fields = match tuple_ty with Vtype.Tuple fs -> fs | _ -> [] in
  match List.find_opt (fun (n, _) -> same_name n field) fields with
  | None -> error "no attribute %s in %a" field Vtype.pp tuple_ty
  | Some (canonical, fty) ->
    let result_ty =
      match collection_wrap with
      | Some `Set -> Vtype.Set fty
      | Some `Bag -> Vtype.Bag fty
      | Some `List -> Vtype.List fty
      | Some `Array -> Vtype.Array fty
      | None -> fty
    in
    (Lera.Call ("project", [ inner; Lera.Cst (Value.Str canonical) ]), result_ty)

and const_value ctx e =
  match tr_expr ctx e with
  | Lera.Cst v, _ -> v
  | s, _ -> error "expected a constant, found %a" Lera.pp_scalar s

(* -- FROM resolution and view expansion -------------------------------- *)

let rec resolve_from ctx (name, alias) : Lera.rel * input =
  let rname = Option.value alias ~default:name in
  match ctx.self with
  | Some (self_name, self_schema) when same_name name self_name ->
    (Lera.Base self_name, { rname; schema = self_schema })
  | _ -> (
    match Catalog.table ctx.catalog name with
    | Some schema -> (Lera.Base name, { rname; schema })
    | None -> (
      match Catalog.view ctx.catalog name with
      | Some v -> (
        (* a materialized view with a recorded extent schema is read as a
           stored base relation; during its own definition (no schema
           recorded yet) it still expands compositionally *)
        match
          if v.Catalog.materialized then
            Catalog.view_schema ctx.catalog v.Catalog.vname
          else None
        with
        | Some schema -> (Lera.Base v.Catalog.vname, { rname; schema })
        | None ->
          if List.exists (same_name v.Catalog.vname) ctx.stack then
            error "mutually recursive views are not supported (%s)"
              v.Catalog.vname;
          let rel, schema = view_rel ctx.catalog ~stack:ctx.stack v in
          (rel, { rname; schema }))
      | None -> error "unknown relation or view %s" name))

and view_rel catalog ~stack (v : Catalog.view) : Lera.rel * Schema.t =
  let stack = v.Catalog.vname :: stack in
  let rename schema =
    match v.Catalog.columns with
    | [] -> schema
    | cols ->
      if List.length cols <> List.length schema then
        error "view %s declares %d columns but its body yields %d" v.Catalog.vname
          (List.length cols) (List.length schema);
      List.map2 (fun c (_, ty) -> (c, ty)) cols schema
  in
  if not v.Catalog.recursive then begin
    let rel = select_arms catalog ~stack ~self:None v.Catalog.body in
    (rel, rename (rel_schema catalog rel))
  end
  else begin
    (* Figure 5: translate the non-recursive arms first to learn the
       recursion variable's schema, then the recursive arms *)
    let arms = split_arms v.Catalog.body in
    let is_base arm =
      not
        (List.exists
           (fun (n, _) -> same_name n v.Catalog.vname)
           arm.Ast.from)
    in
    let base_arms = List.filter is_base arms in
    if base_arms = [] then
      error "recursive view %s has no non-recursive arm" v.Catalog.vname;
    let base_rels = List.map (one_arm catalog ~stack ~self:None) base_arms in
    let self_schema = rename (rel_schema catalog (List.hd base_rels)) in
    let self = Some (v.Catalog.vname, self_schema) in
    let all_rels =
      List.map
        (fun arm ->
          if is_base arm then one_arm catalog ~stack ~self:None arm
          else one_arm catalog ~stack ~self arm)
        arms
    in
    (Lera.Fix (v.Catalog.vname, Lera.Union all_rels), self_schema)
  end

and rel_schema catalog rel =
  try Schema.of_rel (Catalog.schema_env catalog) rel
  with Schema.Schema_error msg -> error "%s" msg

and split_arms (s : Ast.select) : Ast.select list =
  match s.Ast.union with
  | None -> [ { s with Ast.union = None } ]
  | Some rest -> { s with Ast.union = None } :: split_arms rest

and select_arms catalog ~stack ~self (s : Ast.select) : Lera.rel =
  match split_arms s with
  | [ arm ] -> one_arm catalog ~stack ~self arm
  | arms -> Lera.Union (List.map (one_arm catalog ~stack ~self) arms)

and one_arm catalog ~stack ~self (s : Ast.select) : Lera.rel =
  let ctx0 = { catalog; inputs = []; self; stack } in
  let resolved = List.map (resolve_from ctx0) s.Ast.from in
  let rels = List.map fst resolved in
  let ctx = { ctx0 with inputs = List.map snd resolved } in
  let qual =
    match s.Ast.where with
    | None -> Lera.tru
    | Some w ->
      let sc, ty = tr_expr ctx w in
      (match expand ctx ty with
      | Vtype.Bool | Vtype.Any -> ()
      | other -> error "WHERE clause has type %a, expected BOOLEAN" Vtype.pp other);
      sc
  in
  (* nesting: MakeSet(…) projections with GROUP BY become a nest operator
     (paper Figure 4) *)
  let rec contains_makeset (e : Ast.expr) =
    match e with
    | Ast.Call (f, [ _ ]) when same_name f "makeset" -> true
    | Ast.Call (_, args) -> List.exists contains_makeset args
    | Ast.Binop (_, a, b) -> contains_makeset a || contains_makeset b
    | Ast.Not a | Ast.Quant (_, a) -> contains_makeset a
    | Ast.In (a, b) -> contains_makeset a || contains_makeset b
    | Ast.Lit _ | Ast.Ident _ | Ast.Dot _ | Ast.Set_lit _ | Ast.List_lit _ -> false
  in
  let has_nest =
    List.exists (fun (e, _) -> contains_makeset e) s.Ast.proj
    || Option.fold ~none:false ~some:contains_makeset s.Ast.having
  in
  if not has_nest then begin
    if s.Ast.group_by <> [] then error "GROUP BY without MakeSet is not supported";
    if Option.is_some s.Ast.having then
      error "HAVING requires GROUP BY with a MakeSet aggregate";
    let proj = List.map (fun (e, _) -> fst (tr_expr ctx e)) s.Ast.proj in
    Lera.Search (rels, qual, proj)
  end
  else begin
    let group_exprs = s.Ast.group_by in
    if group_exprs = [] then error "MakeSet requires a GROUP BY clause";
    (* collect the MakeSet argument: every MakeSet in the projection must
       collect the same expression (one nested column) *)
    let rec makeset_args (e : Ast.expr) =
      match e with
      | Ast.Call (f, [ arg ]) when same_name f "makeset" -> [ arg ]
      | Ast.Call (_, args) -> List.concat_map makeset_args args
      | Ast.Binop (_, a, b) -> makeset_args a @ makeset_args b
      | Ast.Not a | Ast.Quant (_, a) -> makeset_args a
      | Ast.In (a, b) -> makeset_args a @ makeset_args b
      | Ast.Lit _ | Ast.Ident _ | Ast.Dot _ | Ast.Set_lit _ | Ast.List_lit _ -> []
    in
    let nested_arg =
      match
        List.sort_uniq compare
          (List.concat_map (fun (e, _) -> makeset_args e) s.Ast.proj
          @ Option.fold ~none:[] ~some:makeset_args s.Ast.having)
      with
      | [ a ] -> a
      | [] -> error "MakeSet expected in the projection"
      | _ :: _ :: _ -> error "all MakeSet projections must collect the same expression"
    in
    let group_scalars = List.map (tr_expr ctx) group_exprs in
    let nested_scalar, nested_ty = tr_expr ctx nested_arg in
    let inner_proj = List.map fst group_scalars @ [ nested_scalar ] in
    let k = List.length group_exprs in
    let inner = Lera.Search (rels, qual, inner_proj) in
    let nest = Lera.Nest (inner, List.init k (fun i -> i + 1), [ k + 1 ]) in
    (* the projection items are expressions over the grouped columns and
       the nested set: substitute placeholder identifiers and translate
       against the nest's output schema — this is how aggregates work
       here, as collection ADT functions over the MakeSet result
       (cardinality = COUNT, etc.) *)
    let rec substitute (e : Ast.expr) : Ast.expr =
      if e = Ast.Call ("MakeSet", [ nested_arg ]) || is_makeset_of e then
        Ast.Ident "__nested"
      else
        match List.find_index (fun g -> g = e) group_exprs with
        | Some i -> Ast.Ident (Fmt.str "__g%d" (i + 1))
        | None -> (
          match e with
          | Ast.Call (f, args) -> Ast.Call (f, List.map substitute args)
          | Ast.Binop (op, a, b) -> Ast.Binop (op, substitute a, substitute b)
          | Ast.Not a -> Ast.Not (substitute a)
          | Ast.Quant (q, a) -> Ast.Quant (q, substitute a)
          | Ast.In (a, b) -> Ast.In (substitute a, substitute b)
          | Ast.Lit _ | Ast.Set_lit _ | Ast.List_lit _ -> e
          | Ast.Ident n ->
            error "projection %s is neither grouped nor over MakeSet" n
          | Ast.Dot (r, a) ->
            error "projection %s.%s is neither grouped nor over MakeSet" r a)
    and is_makeset_of e =
      match e with
      | Ast.Call (f, [ arg ]) when same_name f "makeset" -> arg = nested_arg
      | _ -> false
    in
    let post_schema =
      List.mapi (fun i (_, ty) -> (Fmt.str "__g%d" (i + 1), ty)) group_scalars
      @ [ ("__nested", Vtype.Set nested_ty) ]
    in
    let post_ctx =
      { ctx with inputs = [ { rname = "__nest"; schema = post_schema } ] }
    in
    (* HAVING filters the groups before the final projection *)
    let grouped =
      match s.Ast.having with
      | None -> nest
      | Some h -> Lera.Filter (nest, fst (tr_expr post_ctx (substitute h)))
    in
    let post_proj =
      List.map (fun (e, _) -> fst (tr_expr post_ctx (substitute e))) s.Ast.proj
    in
    let identity =
      List.length post_proj = k + 1
      && List.for_all2
           (fun p j -> p = Lera.Col (1, j))
           post_proj
           (List.init (k + 1) (fun i -> i + 1))
    in
    if identity then grouped else Lera.Project (grouped, post_proj)
  end

(* -- public entry points ----------------------------------------------- *)

let select catalog s = select_arms catalog ~stack:[] ~self:None s

let select_schema catalog s = rel_schema catalog (select catalog s)

let relation_of_name catalog name =
  match Catalog.table catalog name with
  | Some _ -> Lera.Base name
  | None -> (
    match Catalog.view catalog name with
    | Some v -> (
      match
        if v.Catalog.materialized then Catalog.view_schema catalog v.Catalog.vname
        else None
      with
      | Some _ -> Lera.Base v.Catalog.vname
      | None -> fst (view_rel catalog ~stack:[] v))
    | None -> error "unknown relation or view %s" name)

let schema_of_name catalog name =
  match Catalog.table catalog name with
  | Some schema -> schema
  | None -> (
    match Catalog.view catalog name with
    | Some v -> (
      match
        if v.Catalog.materialized then Catalog.view_schema catalog v.Catalog.vname
        else None
      with
      | Some schema -> schema
      | None -> snd (view_rel catalog ~stack:[] v))
    | None -> error "unknown relation or view %s" name)

let view_plan catalog (v : Catalog.view) = view_rel catalog ~stack:[] v

let expr_over_table catalog ~table e =
  match Catalog.table catalog table with
  | None -> error "unknown table %s" table
  | Some schema ->
    let ctx =
      {
        catalog;
        inputs = [ { rname = table; schema } ];
        self = None;
        stack = [];
      }
    in
    tr_expr ctx e

let rec coerce_value catalog expected (v : Value.t) : Value.t =
  let types = Catalog.types catalog in
  match Vtype.expand types expected, v with
  | Vtype.Enum (n, labels), Value.Str s when List.mem s labels -> Value.Enum (n, s)
  | Vtype.Set ety, (Value.Set xs | Value.Bag xs | Value.List xs) ->
    Value.set (List.map (coerce_value catalog ety) xs)
  | Vtype.Bag ety, (Value.Set xs | Value.Bag xs | Value.List xs) ->
    Value.bag (List.map (coerce_value catalog ety) xs)
  | Vtype.List ety, (Value.List xs | Value.Set xs | Value.Bag xs) ->
    Value.list (List.map (coerce_value catalog ety) xs)
  | Vtype.Array ety, (Value.Array xs | Value.List xs) ->
    Value.array (List.map (coerce_value catalog ety) xs)
  | Vtype.Tuple fields, Value.Tuple vfields
    when List.length fields = List.length vfields ->
    Value.tuple
      (List.map2 (fun (n, ty) (_, fv) -> (n, coerce_value catalog ty fv)) fields vfields)
  | _ -> v

let expr_to_value ?expected catalog (e : Ast.expr) : Value.t =
  let ctx = { catalog; inputs = []; self = None; stack = [] } in
  let v = const_value ctx e in
  match expected with
  | Some ty -> coerce_value catalog ty v
  | None -> v
