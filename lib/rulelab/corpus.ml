(* The seeded corpus of known-unsound rules used by tests, CI and the
   E9 bench section: every rule parses, fires on the verifier's seeded
   redexes, and changes query results (or crashes the pipeline) on some
   instance.  The same text is committed as packs/known_bad.rules for
   the CLI path; the library copy is the source of truth. *)

let known_bad =
  {|
  -- selections: dropped, weakened, or rewritten away
  drop_filter:      filter(r, f) --> r ;
  filter_weaken:    filter(r, f) / distinct(f, true) --> filter(r, true) ;
  search_drop_qual: search(z, f, p) / distinct(f, true) --> search(z, true, p) ;
  and_drop_conjunct:
    and(bag(c*, f)) / nonempty(c*), distinct(f, true) --> and(bag(c*)) ;

  -- set operators: confused or thrown away
  union_to_inter:   union(set(a, b)) --> intersection(a, b) ;
  inter_to_union:   intersection(a, b) --> union(set(a, b)) ;
  diff_drop:        difference(a, b) --> a ;
  drop_union_arm:   union(set(x*, r)) / nonempty(x*) --> union(set(x*)) ;

  -- comparison semantics: weakened, strengthened or inverted
  eq_to_true:       x = y / distinct(x, y) --> true ;
  lt_weaken:        x < y --> x <= y ;
  le_strengthen:    x <= y --> x < y ;
  neq_to_eq:        x <> y --> x = y ;

  -- projections and fixpoints: structure thrown away
  proj_truncate:
    search(z, q, tuple(a, b*)) / nonempty(b*) --> search(z, q, tuple(a)) ;
  fix_forget:       fix(n, b) --> b ;
|}
