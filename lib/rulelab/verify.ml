(* Differential rule verification (the rule lab's soundness engine).

   A candidate rule is mounted as an extra block *in front of* the base
   program (redexes like filter(r, f) exist on the raw translated term
   and are consumed by the merging block, so a prepended block sees
   them).  For every trial — a plan seeded to contain redexes for the
   whole LERA vocabulary, or drawn from the random plan generator, plus
   a randomized instance — the query is rewritten twice, with and
   without the candidate, and both results are evaluated under the
   indexed physical layer.  A rule that changes results, or that makes
   the rewrite/evaluation pipeline fail where the baseline succeeded,
   is unsound; its counterexample is then shrunk greedily to a minimal
   failing plan + instance.

   The candidate block always gets a finite condition-check limit, so
   nonterminating rules stay bounded during verification; whether the
   rule *needs* a limit is reported separately by the static
   termination audit (Rule_analysis).  A final pack-level pass mounts
   all rules together under an Obs.Profile and replays the trials to
   find dead rules (never fire) and shadowed rules (dead, but overlap
   an earlier rule that did fire). *)

module Term = Eds_term.Term
module Value = Eds_value.Value
module Lera = Eds_lera.Lera
module Relation = Eds_engine.Relation
module Database = Eds_engine.Database
module Eval = Eds_engine.Eval
module Rule = Eds_rewriter.Rule
module Rule_parser = Eds_rewriter.Rule_parser
module Rule_analysis = Eds_rewriter.Rule_analysis
module Engine = Eds_rewriter.Engine
module Optimizer = Eds_rewriter.Optimizer
module Obs = Eds_obs.Obs
module Metrics = Eds_obs.Metrics

let m_rules =
  Metrics.counter ~help:"Rules checked by the differential verifier"
    "eds_rulelab_rules_checked_total"

let m_trials =
  Metrics.counter ~help:"Differential verification trials run"
    "eds_rulelab_trials_total"

let m_unsound =
  Metrics.counter ~help:"Rules flagged unsound by the verifier"
    "eds_rulelab_unsound_total"

let m_shrink =
  Metrics.counter ~help:"Counterexample shrinking steps taken"
    "eds_rulelab_shrink_steps_total"

(* -- reports ------------------------------------------------------------- *)

type counterexample = {
  plan : Lera.rel;
  relations : (string * Relation.t) list;
  expected : Relation.t;
  got : (Relation.t, string) result;
  shrink_steps : int;
}

type soundness =
  | Sound of { fired : int; trials : int }
  | Not_exercised of { trials : int }
  | Unsound of counterexample

type liveness = Live | Dead | Shadowed of string

type rule_report = {
  rule : Rule.t;
  soundness : soundness;
  behaviour : Rule_analysis.size_behaviour;
  warnings : Rule_analysis.warning list;
  liveness : liveness;
}

type report = {
  rules : rule_report list;
  overlaps : (string * string) list;
  trials : int;
  seed : int;
}

let clean r =
  List.for_all
    (fun rr -> match rr.soundness with Unsound _ -> false | _ -> true)
    r.rules

let unsound r =
  List.filter
    (fun rr -> match rr.soundness with Unsound _ -> true | _ -> false)
    r.rules

let exercised r =
  List.length
    (List.filter
       (fun rr ->
         match rr.soundness with
         | Sound { fired; _ } -> fired > 0
         | Unsound _ -> true
         | Not_exercised _ -> false)
       r.rules)

(* -- seeded redex templates ---------------------------------------------- *)

let c = Lera.col
let k n = Lera.Cst (Value.Int n)
let lt a b = Lera.Call ("<", [ a; b ])
let le a b = Lera.Call ("<=", [ a; b ])
let ge a b = Lera.Call (">=", [ a; b ])
let gt a b = Lera.Call (">", [ a; b ])
let ne a b = Lera.Call ("<>", [ a; b ])
let r0 = Lera.Base "R0"
let r1 = Lera.Base "R1"
let r2 = Lera.Base "R2"

let tc_fix =
  Lera.Fix
    ( "TCV",
      Lera.Union
        [
          Lera.Base "EDGE";
          Lera.Search
            ( [ Lera.Rvar "TCV"; Lera.Base "EDGE" ],
              Lera.eq (c 1 2) (c 2 1),
              [ c 1 1; c 2 2 ] );
        ] )

(* one plan per redex family of the LERA vocabulary: plain and stacked
   filters, searches with every comparison operator, unions (duplicate,
   mixed, nested), diff/inter, joins, nest/unnest, fixpoints plain and
   under a constant selection (the magic-sets redex), plus
   qualification shapes the semantic/simplification blocks feed on *)
let templates =
  [
    Lera.Filter (r0, lt (c 1 1) (k 4));
    Lera.Filter (Lera.Filter (r1, lt (c 1 1) (k 4)), Lera.eq (c 1 2) (k 2));
    Lera.Filter (r0, Lera.tru);
    Lera.Search
      ( [ r0; r1 ],
        Lera.conj [ Lera.eq (c 1 1) (c 2 1); le (c 1 2) (k 5) ],
        [ c 1 2; c 2 2 ] );
    Lera.Search (r2 :: [], Lera.conj [ gt (c 1 3) (k 1); ge (c 1 1) (k 2) ], [ c 1 1; c 1 3 ]);
    Lera.Search
      ( [ Lera.Search (r2 :: [], lt (c 1 1) (k 5), [ c 1 1; c 1 2 ]) ],
        Lera.eq (c 1 2) (k 3),
        [ c 1 1 ] );
    Lera.Search
      ( [ r0 ],
        Lera.conj [ Lera.eq (c 1 1) (c 1 2); Lera.eq (c 1 2) (k 3) ],
        [ c 1 1; c 1 2 ] );
    Lera.Search ([ r1 ], Lera.Call ("not", [ lt (c 1 1) (c 1 2) ]), [ c 1 1 ]);
    Lera.Filter (r0, le (c 1 1) (k 3));
    Lera.Filter (r1, ge (c 1 2) (k 3));
    Lera.Search ([ r2 ], le (c 1 1) (c 1 2), [ c 1 1; c 1 2 ]);
    Lera.Union [ r0; r0 ];
    Lera.Union [ r0; r1 ];
    Lera.Union [ Lera.Union [ r0; r1 ]; Lera.Base "EDGE" ];
    Lera.Inter (r0, r0);
    Lera.Inter (r0, r1);
    Lera.Diff (r1, r0);
    Lera.Search ([ Lera.Diff (r0, r1) ], Lera.eq (c 1 1) (k 2), [ c 1 2 ]);
    Lera.Search ([ Lera.Inter (r0, r1) ], lt (c 1 1) (k 3), [ c 1 1 ]);
    Lera.Search ([ Lera.Union [ r0; r1 ] ], Lera.eq (c 1 1) (k 2), [ c 1 2 ]);
    Lera.Join (r0, r1, Lera.conj [ Lera.eq (c 1 1) (c 2 1); ne (c 1 2) (c 2 2) ]);
    Lera.Project (r2, [ c 1 1; c 1 3 ]);
    tc_fix;
    Lera.Search ([ tc_fix ], Lera.eq (c 1 1) (k 2), [ c 1 2 ]);
    Lera.Nest (r2, [ 1 ], [ 2 ]);
    Lera.Search ([ Lera.Nest (r2, [ 1 ], [ 2 ]) ], Lera.eq (c 1 1) (k 3), [ c 1 1 ]);
    Lera.Unnest (Lera.Nest (r0, [ 1 ], [ 2 ]), 2);
  ]

let make_trials ~seed ~trials =
  let rand = Random.State.make [| seed |] in
  List.init trials (fun i ->
      let plan =
        match List.nth_opt templates i with
        | Some p -> p
        | None -> fst (Gen.plan rand)
      in
      (plan, Gen.instance rand))

(* -- the differential core ----------------------------------------------- *)

let budget = 300 (* candidate-block condition checks per rewrite *)
let cand_block ?(limit = budget) rules =
  { Rule.block_name = "~candidate"; rules; limit = Some limit }

let mount base rules =
  { Rule.blocks = cand_block rules :: base.Rule.blocks; rounds = base.Rule.rounds }

(* a reserved alias keeps Engine.stats.by_rule unambiguous even when the
   candidate duplicates a base-program rule (self-verification) *)
let alias r = { r with Rule.name = r.Rule.name ^ "~cand" }

let evaluate db rel =
  match Eval.run ~physical:Eval.Physical.Indexed db rel with
  | r -> Ok r
  | exception e -> Error (Printexc.to_string e)

type verdict =
  | Skip  (** the baseline itself fails on this trial *)
  | Agree of bool  (** fired? *)
  | Differ of Relation.t * (Relation.t, string) result

(* the rule-independent half of a trial: rewrite with the base program
   alone and evaluate; [None] when the baseline itself fails *)
let baseline_of ~ctx ~base db plan =
  match Optimizer.rewrite ~program:base ctx plan with
  | exception _ -> None
  | baseline -> (
    match evaluate db baseline with Error _ -> None | Ok r -> Some r)

let with_candidate ~ctx ~base ~rule ~expected db plan =
  let aliased = alias rule in
  let with_prog = mount base [ aliased ] in
  Metrics.Counter.incr m_trials;
  let stats = Engine.fresh_stats () in
  let fired st =
    match List.assoc_opt aliased.Rule.name st.Engine.by_rule with
    | Some n -> n > 0
    | None -> false
  in
  match Optimizer.rewrite ~program:with_prog ~stats ctx plan with
  | exception e ->
    if fired stats then Differ (expected, Error (Printexc.to_string e))
    else Skip
  | rewritten ->
    if not (fired stats) then Agree false
    else (
      match evaluate db rewritten with
      | Error msg -> Differ (expected, Error msg)
      | Ok got ->
        if Relation.equal expected got then Agree true
        else Differ (expected, Ok got))

let differential ~ctx ~base ~rule db plan =
  match baseline_of ~ctx ~base db plan with
  | None -> Skip
  | Some expected -> with_candidate ~ctx ~base ~rule ~expected db plan

let fails ~ctx ~base ~rule db plan =
  match differential ~ctx ~base ~rule db plan with
  | Differ _ -> true
  | Skip | Agree _ -> false

(* -- counterexample shrinking -------------------------------------------- *)

let drop_one xs =
  List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) xs) xs

let shrink_qual q =
  match Lera.conjuncts q with
  | [] | [ _ ] -> []
  | cs -> List.map Lera.conj (drop_one cs)

(* candidate replacements, structurally smaller; arity-breaking
   candidates are discarded by re-running the property (an invalid plan
   no longer *fails*, it just errors in the baseline, which [fails]
   treats as Skip) *)
let rec shrink_rel r =
  let open Lera in
  let sub = inputs r in
  let rebuilt =
    match r with
    | Base _ | Rvar _ -> []
    | Filter (a, q) ->
      List.map (fun a' -> Filter (a', q)) (shrink_rel a)
      @ List.map (fun q' -> Filter (a, q')) (shrink_qual q)
    | Project (a, ps) -> List.map (fun a' -> Project (a', ps)) (shrink_rel a)
    | Join (a, b, q) ->
      List.map (fun a' -> Join (a', b, q)) (shrink_rel a)
      @ List.map (fun b' -> Join (a, b', q)) (shrink_rel b)
      @ List.map (fun q' -> Join (a, b, q')) (shrink_qual q)
    | Union ops ->
      (if List.length ops > 1 then List.map (fun l -> Union l) (drop_one ops)
       else [])
      @ List.concat
          (List.mapi
             (fun i op ->
               List.map
                 (fun op' ->
                   Union (List.mapi (fun j o -> if j = i then op' else o) ops))
                 (shrink_rel op))
             ops)
    | Diff (a, b) ->
      List.map (fun a' -> Diff (a', b)) (shrink_rel a)
      @ List.map (fun b' -> Diff (a, b')) (shrink_rel b)
    | Inter (a, b) ->
      List.map (fun a' -> Inter (a', b)) (shrink_rel a)
      @ List.map (fun b' -> Inter (a, b')) (shrink_rel b)
    | Search (ops, q, ps) ->
      (if List.length ops > 1 then
         List.map (fun l -> Search (l, q, ps)) (drop_one ops)
       else [])
      @ List.map (fun q' -> Search (ops, q', ps)) (shrink_qual q)
      @ (if List.length ps > 1 then
           List.map (fun ps' -> Search (ops, q, ps')) (drop_one ps)
         else [])
      @ List.concat
          (List.mapi
             (fun i op ->
               List.map
                 (fun op' ->
                   Search
                     (List.mapi (fun j o -> if j = i then op' else o) ops, q, ps))
                 (shrink_rel op))
             ops)
    | Fix (n, b) -> List.map (fun b' -> Fix (n, b')) (shrink_rel b)
    | Nest (a, g, ns) -> List.map (fun a' -> Nest (a', g, ns)) (shrink_rel a)
    | Unnest (a, i) -> List.map (fun a' -> Unnest (a', i)) (shrink_rel a)
  in
  sub @ rebuilt

let db_of_relations rels =
  let db = Database.create () in
  List.iter (fun (name, r) -> Database.add_relation db name r) rels;
  db

let relations_of_db db =
  List.map (fun n -> (n, Database.relation db n)) (Database.relation_names db)

let shrink_db db =
  List.concat_map
    (fun (name, r) ->
      let tuples = r.Relation.tuples in
      let n = List.length tuples in
      if n = 0 then []
      else
        let variants =
          if n > 6 then
            (* halves first, then single drops at the ends *)
            [
              List.filteri (fun i _ -> i < n / 2) tuples;
              List.filteri (fun i _ -> i >= n / 2) tuples;
              List.tl tuples;
              List.filteri (fun i _ -> i <> n - 1) tuples;
            ]
          else List.map (fun ts -> ts) (drop_one tuples)
        in
        List.map
          (fun ts ->
            let r' = Relation.make r.Relation.schema ts in
            List.map (fun (m, s) -> if m = name then (m, r') else (m, s))
              (relations_of_db db)
            |> db_of_relations)
          variants)
    (relations_of_db db)

let shrink ~ctx ~base ~rule ~max_steps plan db =
  let steps = ref 0 in
  let try_fails db plan =
    if !steps >= max_steps then false
    else begin
      incr steps;
      Metrics.Counter.incr m_shrink;
      fails ~ctx ~base ~rule db plan
    end
  in
  let rec go plan db =
    match List.find_opt (fun db' -> try_fails db' plan) (shrink_db db) with
    | Some db' -> go plan db'
    | None -> (
      match List.find_opt (fun p -> try_fails db p) (shrink_rel plan) with
      | Some p -> go p db
      | None -> (plan, db))
  in
  let plan, db = go plan db in
  (plan, db, !steps)

(* -- per-rule soundness -------------------------------------------------- *)

let check_rule ~ctx ~base ~trial_list ~baselines rule =
  Metrics.Counter.incr m_rules;
  let fired = ref 0 in
  let rec loop i =
    if i >= Array.length trial_list then None
    else
      match baselines.(i) with
      | None -> loop (i + 1)
      | Some expected -> (
        let plan, db = trial_list.(i) in
        match with_candidate ~ctx ~base ~rule ~expected db plan with
        | Skip -> loop (i + 1)
        | Agree f ->
          if f then incr fired;
          loop (i + 1)
        | Differ _ -> Some (plan, db))
  in
  match loop 0 with
  | None ->
    if !fired > 0 then Sound { fired = !fired; trials = Array.length trial_list }
    else Not_exercised { trials = Array.length trial_list }
  | Some (plan, db) ->
    Metrics.Counter.incr m_unsound;
    let plan, db, shrink_steps = shrink ~ctx ~base ~rule ~max_steps:400 plan db in
    let expected, got =
      match differential ~ctx ~base ~rule db plan with
      | Differ (e, g) -> (e, g)
      | Skip | Agree _ ->
        (* unreachable: [shrink] only keeps failing candidates *)
        (Relation.empty [], Error "counterexample no longer reproduces")
    in
    Unsound
      { plan; relations = relations_of_db db; expected; got; shrink_steps }

(* replay a counterexample: true when it still demonstrates the rule is
   unsound (used by tests and by sceptical operators) *)
let check_counterexample ?base rule ce =
  let base = match base with Some b -> b | None -> Optimizer.program () in
  let ctx = Optimizer.make_ctx (Database.schema_env (Gen.db ())) in
  fails ~ctx ~base ~rule (db_of_relations ce.relations) ce.plan

(* -- liveness: the pack-level profile pass ------------------------------- *)

let liveness_pass ~ctx ~base ~trial_list rules =
  let profile = Obs.Profile.create () in
  let saved = Obs.Profile.current () in
  Obs.Profile.set_current (Some profile);
  Fun.protect
    ~finally:(fun () -> Obs.Profile.set_current saved)
    (fun () ->
      let prog = mount base rules in
      Array.iter
        (fun (plan, _db) ->
          try ignore (Optimizer.rewrite ~program:prog ctx plan)
          with _ -> ())
        trial_list);
  let fires name =
    match
      List.assoc_opt ("~candidate", name) (Obs.Profile.cells profile)
    with
    | Some cell -> cell.Obs.Profile.fires
    | None -> 0
  in
  List.mapi
    (fun i rule ->
      if fires rule.Rule.name > 0 then Live
      else
        let shadow =
          List.find_opt
            (fun earlier ->
              fires earlier.Rule.name > 0
              && Rule_analysis.could_overlap earlier rule)
            (List.filteri (fun j _ -> j < i) rules)
        in
        match shadow with
        | Some earlier -> Shadowed earlier.Rule.name
        | None -> Dead)
    rules

(* -- entry points -------------------------------------------------------- *)

let verify_rules ?(seed = 42) ?(trials = 48) ?base rules =
  let base = match base with Some b -> b | None -> Optimizer.program () in
  let ctx = Optimizer.make_ctx (Database.schema_env (Gen.db ())) in
  let trial_list = Array.of_list (make_trials ~seed ~trials) in
  let baselines =
    Array.map (fun (plan, db) -> baseline_of ~ctx ~base db plan) trial_list
  in
  let liveness = liveness_pass ~ctx ~base ~trial_list rules in
  let reports =
    List.map2
      (fun rule liveness ->
        let soundness = check_rule ~ctx ~base ~trial_list ~baselines rule in
        {
          rule;
          soundness;
          behaviour = Rule_analysis.size_behaviour rule;
          warnings =
            Rule_analysis.check_block
              { Rule.block_name = "pack"; rules = [ rule ]; limit = None };
          liveness;
        })
      rules liveness
  in
  let overlaps =
    Rule_analysis.overlaps
      { Rule.block_name = "pack"; rules; limit = None }
  in
  { rules = reports; overlaps; trials; seed }

let verify_pack ?seed ?trials ?base text =
  verify_rules ?seed ?trials ?base (Rule_parser.parse_rules text)

(* -- rendering ----------------------------------------------------------- *)

let pp_counterexample ppf ce =
  Fmt.pf ppf "@[<v 4>counterexample (shrunk in %d steps):@ plan: %s"
    ce.shrink_steps (Lera.to_string ce.plan);
  List.iter
    (fun (name, r) ->
      if Relation.cardinality r > 0 then
        Fmt.pf ppf "@ %s = %a" name Relation.pp r)
    ce.relations;
  Fmt.pf ppf "@ expected: %a" Relation.pp ce.expected;
  (match ce.got with
  | Ok r -> Fmt.pf ppf "@ got     : %a" Relation.pp r
  | Error msg -> Fmt.pf ppf "@ got     : error: %s" msg);
  Fmt.pf ppf "@]"

let pp_rule_report ppf rr =
  (match rr.soundness with
  | Sound { fired; trials } ->
    Fmt.pf ppf "rule %-20s sound (fired in %d/%d trials)" rr.rule.Rule.name
      fired trials
  | Not_exercised { trials } ->
    Fmt.pf ppf "rule %-20s NOT EXERCISED (never fired in %d trials)"
      rr.rule.Rule.name trials
  | Unsound ce ->
    Fmt.pf ppf "rule %-20s UNSOUND@,    %a" rr.rule.Rule.name pp_counterexample
      ce);
  (match rr.liveness with
  | Live -> ()
  | Dead -> Fmt.pf ppf "@,    liveness: dead in pack context (never fired)"
  | Shadowed by -> Fmt.pf ppf "@,    liveness: shadowed by earlier rule %s" by);
  List.iter
    (fun w -> Fmt.pf ppf "@,    termination: %a" Rule_analysis.pp_warning w)
    rr.warnings

let pp_report ppf r =
  Fmt.pf ppf "@[<v>verified %d rules over %d trials (seed %d)@,"
    (List.length r.rules) r.trials r.seed;
  List.iter (fun rr -> Fmt.pf ppf "%a@," pp_rule_report rr) r.rules;
  (match r.overlaps with
  | [] -> ()
  | ps ->
    Fmt.pf ppf "overlaps (earlier rule wins the redex):@,";
    List.iter (fun (a, b) -> Fmt.pf ppf "    %s <-> %s@," a b) ps);
  let bad = List.length (unsound r) in
  if bad = 0 then Fmt.pf ppf "verdict: CLEAN (%d/%d rules exercised)@]"
      (exercised r) (List.length r.rules)
  else Fmt.pf ppf "verdict: %d UNSOUND RULE%s@]" bad
      (if bad = 1 then "" else "S")
