(** Differential verification of rewrite-rule packs.

    Each rule is mounted as an extra block in front of a base program
    and exercised on randomized plans and instances seeded to contain
    redexes for its left-hand side; a rule whose presence changes query
    results — or crashes rewriting/evaluation where the baseline
    succeeded — is unsound, and its counterexample is shrunk greedily
    to a minimal failing plan + instance.  One report folds in the
    static termination audit and overlap analysis ({!Rule_analysis})
    and the pack-level liveness pass (dead/shadowed rules from
    [Obs.Profile] fire data).

    Candidate blocks always run under a finite condition-check limit,
    so nonterminating rules stay bounded during verification. *)

module Lera = Eds_lera.Lera
module Relation = Eds_engine.Relation
module Rule = Eds_rewriter.Rule
module Rule_analysis = Eds_rewriter.Rule_analysis

type counterexample = {
  plan : Lera.rel;  (** minimal failing plan *)
  relations : (string * Relation.t) list;  (** minimal instance *)
  expected : Relation.t;  (** result without the rule *)
  got : (Relation.t, string) result;
      (** result with the rule, or the induced pipeline error *)
  shrink_steps : int;
}

type soundness =
  | Sound of { fired : int; trials : int }
      (** fired and never changed a result *)
  | Not_exercised of { trials : int }
      (** never fired: no soundness evidence either way *)
  | Unsound of counterexample

type liveness =
  | Live  (** fired during the pack-level pass *)
  | Dead  (** never fired with the whole pack mounted *)
  | Shadowed of string
      (** dead, and an earlier overlapping pack rule did fire *)

type rule_report = {
  rule : Rule.t;
  soundness : soundness;
  behaviour : Rule_analysis.size_behaviour;
  warnings : Rule_analysis.warning list;
      (** termination audit, as if the rule ran under an infinite limit *)
  liveness : liveness;
}

type report = {
  rules : rule_report list;
  overlaps : (string * string) list;  (** competing pack-rule pairs *)
  trials : int;
  seed : int;
}

val cand_block : ?limit:int -> Rule.t list -> Rule.block
(** The block shape the verifier mounts candidates in: a reserved name
    and a finite condition-check budget. *)

val verify_rules :
  ?seed:int -> ?trials:int -> ?base:Rule.program -> Rule.t list -> report
(** [base] defaults to the paper's full program
    ([Optimizer.program ()]); pass [{ blocks = []; rounds = 1 }] to test
    a rule's own semantics in isolation. *)

val verify_pack :
  ?seed:int -> ?trials:int -> ?base:Rule.program -> string -> report
(** Parse a rule-pack text ({!Rule_parser.parse_rules}) and verify it.
    Raises {!Rule_parser.Rule_parse_error} on malformed input. *)

val clean : report -> bool
(** No unsound rule (not-exercised and liveness findings are warnings,
    not failures). *)

val unsound : report -> rule_report list
val exercised : report -> int

val check_counterexample :
  ?base:Rule.program -> Rule.t -> counterexample -> bool
(** Replay: does the counterexample still demonstrate unsoundness? *)

val pp_counterexample : Format.formatter -> counterexample -> unit
val pp_rule_report : Format.formatter -> rule_report -> unit
val pp_report : Format.formatter -> report -> unit
