(* Randomized schema-correct LERA plans and database instances — the
   qcheck generators that power the physical-layer equivalence suite,
   extracted here so the rule verifier can reuse them (the same plan
   distribution that checks Naive ≡ Indexed ≡ Parallel also checks
   rewritten ≡ unrewritten).

   Generated plans range over a fixed four-relation schema (R0, R1
   binary; R2 ternary; EDGE binary) with small integer domains, so
   fixpoints stay finite and cross-join blowups stay affordable. *)

module Value = Eds_value.Value
module Vtype = Eds_value.Vtype
module Lera = Eds_lera.Lera
module Relation = Eds_engine.Relation
module Database = Eds_engine.Database

let two = [ ("A", Vtype.Int); ("B", Vtype.Int) ]
let three = [ ("A", Vtype.Int); ("B", Vtype.Int); ("C", Vtype.Int) ]

let db ?(seed = 55555) () =
  let db = Database.create () in
  let state = ref seed in
  let rng bound =
    state := (!state * 1103515245) + 12345;
    abs !state mod bound
  in
  Database.add_relation db "R0"
    (Relation.make two
       (List.init 6 (fun _ -> [ Value.Int (rng 7); Value.Int (rng 7) ])));
  Database.add_relation db "R1"
    (Relation.make two
       (List.init 9 (fun _ -> [ Value.Int (rng 7); Value.Int (rng 7) ])));
  Database.add_relation db "R2"
    (Relation.make three
       (List.init 11 (fun _ ->
            [ Value.Int (rng 7); Value.Int (rng 7); Value.Int (rng 7) ])));
  Database.add_relation db "EDGE"
    (Relation.make two
       (List.init 5 (fun i -> [ Value.Int (i + 1); Value.Int (i + 2) ])));
  db

let instance rand =
  let db = Database.create () in
  let int bound = Random.State.int rand bound in
  let rows n ar =
    List.init n (fun _ -> List.init ar (fun _ -> Value.Int (int 7)))
  in
  Database.add_relation db "R0" (Relation.make two (rows (int 8) 2));
  Database.add_relation db "R1" (Relation.make two (rows (2 + int 9) 2));
  Database.add_relation db "R2" (Relation.make three (rows (int 12) 3));
  (* a chain plus a few random edges: values stay in 0..7, so closures
     over EDGE remain finite whatever the plan does around them *)
  let n = 1 + int 5 in
  let chain = List.init n (fun i -> [ Value.Int (i + 1); Value.Int (i + 2) ]) in
  let extra =
    List.init (int 4) (fun _ -> [ Value.Int (int 7); Value.Int (int 7) ])
  in
  Database.add_relation db "EDGE" (Relation.make two (chain @ extra));
  db

let gen_base =
  QCheck2.Gen.oneofl
    [ (Lera.Base "R0", 2); (Lera.Base "R1", 2); (Lera.Base "R2", 3) ]

(* a random atom over operands of arities [ars] (positional refs stay in
   range, so every generated plan is schema-correct) *)
let gen_atom ars =
  let open QCheck2.Gen in
  let refs =
    List.concat
      (List.mapi
         (fun i ar -> List.init ar (fun j -> Lera.col (i + 1) (j + 1)))
         ars)
  in
  let col = oneofl refs in
  oneof
    [
      (col >>= fun a -> col >|= fun b -> Lera.eq a b);
      ( col >>= fun a ->
        int_range 0 6 >|= fun n -> Lera.eq a (Lera.Cst (Value.Int n)) );
      ( col >>= fun a ->
        int_range 0 6 >|= fun n -> Lera.Call ("<", [ a; Lera.Cst (Value.Int n) ])
      );
    ]

let gen_qual ars =
  QCheck2.Gen.(list_size (int_range 0 3) (gen_atom ars) >|= Lera.conj)

let fix_counter = ref 0

(* coerce [r] of arity [ar] to arity [want] with a projection *)
let coerce (r, ar) want =
  if ar = want then r
  else Lera.Project (r, List.init want (fun i -> Lera.col 1 ((i mod ar) + 1)))

let rec gen_rel fuel =
  let open QCheck2.Gen in
  if fuel <= 0 then gen_base
  else
    frequency
      [
        (3, gen_base);
        ( 2,
          gen_rel (fuel - 1) >>= fun (r, ar) ->
          gen_qual [ ar ] >|= fun q -> (Lera.Filter (r, q), ar) );
        ( 3,
          list_size (int_range 1 3) (gen_rel (fuel - 1)) >>= fun ops ->
          let ars = List.map snd ops in
          gen_qual ars >>= fun q ->
          let refs =
            List.concat
              (List.mapi
                 (fun i ar -> List.init ar (fun j -> Lera.col (i + 1) (j + 1)))
                 ars)
          in
          list_size (int_range 1 3) (oneofl refs) >|= fun ps ->
          (Lera.Search (List.map fst ops, q, ps), List.length ps) );
        ( 1,
          gen_rel (fuel - 1) >>= fun a ->
          gen_rel (fuel - 1) >|= fun b ->
          (Lera.Union [ fst a; coerce b (snd a) ], snd a) );
        ( 1,
          gen_rel (fuel - 1) >>= fun a ->
          gen_rel (fuel - 1) >>= fun b ->
          bool >|= fun inter ->
          let b' = coerce b (snd a) in
          ( (if inter then Lera.Inter (fst a, b') else Lera.Diff (fst a, b')),
            snd a ) );
        ( 1,
          (* a transitive-closure-shaped fixpoint seeded by a generated
             binary relation; EDGE keeps the domain finite *)
          gen_rel (fuel - 1) >|= fun seed ->
          incr fix_counter;
          let n = Fmt.str "T%d" !fix_counter in
          ( Lera.Fix
              ( n,
                Lera.Union
                  [
                    coerce seed 2;
                    Lera.Search
                      ( [ Lera.Rvar n; Lera.Base "EDGE" ],
                        Lera.eq (Lera.col 1 2) (Lera.col 2 1),
                        [ Lera.col 1 1; Lera.col 2 2 ] );
                  ] ),
            2 ) );
      ]

let gen_plan = QCheck2.Gen.(int_range 1 3 >>= gen_rel)
let plan rand = QCheck2.Gen.generate1 ~rand gen_plan
let print_plan (r, _) = Lera.to_string r
