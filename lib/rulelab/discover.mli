(** Rule discovery: candidate rules enumerated from a normalized
    pattern grammar over the LERA vocabulary (filters, unions,
    intersection, difference over relation and qualification
    variables), screened differentially in isolation, verified against
    the full base program with {!Verify}, and ranked by measured work
    savings (combinations + probes + builds + tuples read) on
    redex-rich workloads. *)

module Database = Eds_engine.Database
module Lera = Eds_lera.Lera
module Rule = Eds_rewriter.Rule

type candidate = {
  rule : Rule.t;
  savings : int;  (** total work units saved across the workloads *)
  per_workload : (string * int) list;
  fired : int;  (** verification trials in which the rule fired *)
}

type result = {
  enumerated : int;  (** candidates after static filtering and the cap *)
  screened_out : int;  (** unsound or never exercised in isolation *)
  no_savings : int;  (** sound but no measured positive savings *)
  survivors : candidate list;  (** verified + profitable, best first *)
}

val enumerate : unit -> Rule.t list
(** The statically-safe candidates of the grammar, normalized and
    deduplicated (no cap applied). *)

val default_workloads : unit -> (string * Database.t * Lera.rel) list
(** Stacked filters, duplicated union arms and a self-intersection over
    a deterministic 2000-row relation. *)

val run :
  ?seed:int ->
  ?screen_trials:int ->
  ?verify_trials:int ->
  ?max_candidates:int ->
  ?workloads:(string * Database.t * Lera.rel) list ->
  ?base:Rule.program ->
  unit ->
  result
(** [base] (default the paper program) is what survivors are finally
    verified against; screening always uses the empty program. *)

val pp_candidate : Format.formatter -> candidate -> unit
val pp : Format.formatter -> result -> unit
