(** The committed corpus of known-unsound rules (the library copy of
    [packs/known_bad.rules]): parseable, exercised by the verifier's
    seeded redexes, and each result-changing on some instance.  The
    verifier must flag every one — the E9 catch-rate experiment. *)

val known_bad : string
