(* Rule discovery: enumerate candidate rewrite rules from a normalized
   pattern grammar over the LERA operator vocabulary, screen each
   candidate differentially in isolation (base = the empty program, so
   the trial measures the rule's own semantics), verify survivors
   against the full paper program, and rank them by measured work
   savings (combinations + probes + builds + tuples read) on redex-rich
   workloads.

   The grammar covers filters, unions (with and without a collection
   variable), intersection and difference over relation variables a/b
   and qualification variables f/g — small enough to enumerate
   exhaustively, rich enough to re-discover the paper's merge-and-prune
   family (filter merging, duplicate-arm elimination, self-intersection
   collapse).  Candidates are normalized by renaming variables in
   first-occurrence order, so alpha-equivalent rules dedup; only
   right-hand sides over the left side's variables and no larger than
   the left side are kept, and the static size audit must classify the
   rule as non-growing (it will run without a limit). *)

module Term = Eds_term.Term
module Value = Eds_value.Value
module Vtype = Eds_value.Vtype
module Lera = Eds_lera.Lera
module Relation = Eds_engine.Relation
module Database = Eds_engine.Database
module Eval = Eds_engine.Eval
module Rule = Eds_rewriter.Rule
module Rule_analysis = Eds_rewriter.Rule_analysis
module Optimizer = Eds_rewriter.Optimizer
module Metrics = Eds_obs.Metrics

let m_candidates =
  Metrics.counter ~help:"Candidate rules enumerated by discovery"
    "eds_rulelab_candidates_total"

let m_survivors =
  Metrics.counter ~help:"Verified candidate rules with positive savings"
    "eds_rulelab_survivors_total"

(* -- the pattern grammar ------------------------------------------------- *)

let rel_vars = [ Term.var "a"; Term.var "b" ]

let quals =
  [
    Term.var "f";
    Term.var "g";
    Term.app "and" [ Term.Coll (Term.Bag, [ Term.var "f"; Term.var "g" ]) ];
    Term.tru;
  ]

let unions args = Term.app "union" [ Term.Coll (Term.Set, args) ]

let rec rels depth =
  if depth = 0 then rel_vars
  else
    let sub = rels (depth - 1) in
    let pairs = List.concat_map (fun x -> List.map (fun y -> (x, y)) sub) sub in
    rel_vars
    @ List.concat_map
        (fun r -> List.map (fun q -> Term.app "filter" [ r; q ]) quals)
        sub
    @ List.concat_map
        (fun r ->
          [
            unions [ r ];
            unions [ Term.cvar "u"; r ];
            unions [ r; r ];
            unions [ Term.cvar "u"; r; r ];
          ])
        sub
    @ List.concat_map
        (fun (x, y) ->
          [
            unions [ x; y ];
            Term.app "intersection" [ x; y ];
            Term.app "difference" [ x; y ];
          ])
        pairs

(* normalize: rename variables (and collection variables) in
   first-occurrence order, so alpha-equivalent candidates collapse *)
let canonical (lhs, rhs) =
  let map = Hashtbl.create 8 in
  let next = ref 0 in
  let rename v =
    match Hashtbl.find_opt map v with
    | Some v' -> v'
    | None ->
      incr next;
      let v' = Fmt.str "v%d" !next in
      Hashtbl.add map v v';
      v'
  in
  let rec go t =
    match t with
    | Term.Var v -> Term.Var (rename v)
    | Term.Cvar v -> Term.Cvar (rename v)
    | Term.Cst _ -> t
    | Term.App (f, args) -> Term.App (f, List.map go args)
    | Term.Coll (k, elems) -> Term.Coll (k, List.map go elems)
  in
  let lhs = go lhs in
  (lhs, go rhs)

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

let safe_behaviour = function
  | Rule_analysis.Decreasing | Rule_analysis.Nonincreasing
  | Rule_analysis.Eliminating _ ->
    true
  | Rule_analysis.Guarded_growth | Rule_analysis.Increasing
  | Rule_analysis.Unknown ->
    false

let enumerate () =
  let pool = rels 1 in
  let pairs =
    List.concat_map
      (fun lhs ->
        match lhs with
        | Term.Var _ | Term.Cvar _ -> [] (* a bare variable matches anything *)
        | _ ->
          List.filter_map
            (fun rhs ->
              let lhs, rhs = canonical (lhs, rhs) in
              if Term.equal lhs rhs then None
              else if not (subset (Term.vars rhs) (Term.vars lhs)) then None
              else if Term.size rhs > Term.size lhs then None
              else Some (lhs, rhs))
            pool)
      pool
  in
  let seen = Hashtbl.create 256 in
  let uniq =
    List.filter
      (fun (lhs, rhs) ->
        let key = Term.to_string lhs ^ " --> " ^ Term.to_string rhs in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      pairs
  in
  uniq
  |> List.mapi (fun i (lhs, rhs) ->
         {
           Rule.name = Fmt.str "cand_%03d" i;
           lhs;
           constraints = [];
           rhs;
           methods = [];
         })
  |> List.filter (fun r -> safe_behaviour (Rule_analysis.size_behaviour r))

(* -- savings measurement ------------------------------------------------- *)

let work (s : Eval.stats) =
  s.Eval.combinations + s.Eval.probes + s.Eval.builds + s.Eval.tuples_read

(* deterministic redex-rich workloads: stacked filters, duplicated
   union arms, self-intersection — over one relation big enough that
   saved work dominates noise *)
let default_workloads () =
  let db = Database.create () in
  let two = [ ("A", Vtype.Int); ("B", Vtype.Int) ] in
  let state = ref 314159 in
  let rng bound =
    state := (!state * 1103515245) + 12345;
    abs !state mod bound
  in
  Database.add_relation db "BIG"
    (Relation.make two
       (List.init 2000 (fun _ -> [ Value.Int (rng 50); Value.Int (rng 97) ])));
  let c = Lera.col in
  let k n = Lera.Cst (Value.Int n) in
  let lt a b = Lera.Call ("<", [ a; b ]) in
  let gt a b = Lera.Call (">", [ a; b ]) in
  let big = Lera.Base "BIG" in
  let sel =
    Lera.Search ([ big ], Lera.eq (c 1 1) (k 7), [ c 1 2 ])
  in
  let filt = Lera.Filter (big, lt (c 1 2) (k 40)) in
  [
    ( "stacked_filters",
      db,
      Lera.Filter
        (Lera.Filter (Lera.Filter (big, lt (c 1 1) (k 25)), lt (c 1 2) (k 40)),
         gt (c 1 1) (k 3)) );
    ("dup_union_arms", db, Lera.Union [ sel; sel ]);
    ("self_intersection", db, Lera.Inter (filt, filt));
  ]

(* the candidate's own effect: rewrite with the rule alone (saturation
   up to the verifier's budget) versus an identical engine roundtrip
   with no rules at all — the empty roundtrip is the baseline so that
   normalization the translation itself performs (e.g. set collections
   deduplicating identical union arms) is not credited to the rule *)
let savings_on ~ctx rule (name, db, plan) =
  let eval_work rel =
    let s = Eval.fresh_stats () in
    match Eval.run ~physical:Eval.Physical.Indexed ~stats:s db rel with
    | _ -> Some (work s)
    | exception _ -> None
  in
  let roundtrip prog =
    match Optimizer.rewrite ~program:prog ctx plan with
    | exception _ -> None
    | rewritten -> eval_work rewritten
  in
  let with_rule = { Rule.blocks = [ Verify.cand_block [ rule ] ]; rounds = 1 } in
  let without = { Rule.blocks = []; rounds = 1 } in
  match (roundtrip without, roundtrip with_rule) with
  | Some before, Some after -> Some (name, before - after)
  | _ -> None

(* -- results ------------------------------------------------------------- *)

type candidate = {
  rule : Rule.t;
  savings : int;  (** total work units saved across the workloads *)
  per_workload : (string * int) list;
  fired : int;  (** verification trials in which the rule fired *)
}

type result = {
  enumerated : int;
  screened_out : int;  (** unsound or never exercised in isolation *)
  no_savings : int;  (** sound but no measured positive savings *)
  survivors : candidate list;  (** verified + profitable, best first *)
}

let empty_base = { Rule.blocks = []; rounds = 1 }

let run ?(seed = 42) ?(screen_trials = 16) ?(verify_trials = 32)
    ?(max_candidates = 200) ?workloads ?base () =
  let workloads =
    match workloads with Some w -> w | None -> default_workloads ()
  in
  let base = match base with Some b -> b | None -> Optimizer.program () in
  let all = enumerate () in
  let considered = List.filteri (fun i _ -> i < max_candidates) all in
  Metrics.Counter.add m_candidates (List.length considered);
  (* screen: differential in isolation — cheap, and independent of the
     base program's own opinion of the redex *)
  let screened =
    List.filter
      (fun rule ->
        match
          (Verify.verify_rules ~seed ~trials:screen_trials ~base:empty_base
             [ rule ])
            .Verify.rules
        with
        | [ { Verify.soundness = Verify.Sound { fired; _ }; _ } ] -> fired > 0
        | _ -> false)
      considered
  in
  let screened_out = List.length considered - List.length screened in
  (* rank by measured savings on the workloads *)
  let measured =
    List.filter_map
      (fun rule ->
        let per =
          List.filter_map
            (fun ((_, db, _) as w) ->
              let ctx = Optimizer.make_ctx (Database.schema_env db) in
              savings_on ~ctx rule w)
            workloads
        in
        let total = List.fold_left (fun acc (_, s) -> acc + s) 0 per in
        if total > 0 then Some (rule, per, total) else None)
      screened
  in
  let no_savings = List.length screened - List.length measured in
  (* final verification against the full base program *)
  let survivors =
    List.filter_map
      (fun (rule, per, total) ->
        match
          (Verify.verify_rules ~seed ~trials:verify_trials ~base [ rule ])
            .Verify.rules
        with
        | [ { Verify.soundness = Verify.Sound { fired; _ }; _ } ] ->
          Some { rule; savings = total; per_workload = per; fired }
        | _ -> None)
      measured
  in
  let survivors =
    List.sort (fun a b -> compare b.savings a.savings) survivors
  in
  Metrics.Counter.add m_survivors (List.length survivors);
  {
    enumerated = List.length considered;
    screened_out;
    no_savings;
    survivors;
  }

let pp_candidate ppf c =
  Fmt.pf ppf "@[<v 4>%a@ saves %d work units (%a), fired in %d trials@]"
    Rule.pp c.rule c.savings
    (Fmt.list ~sep:Fmt.comma (fun ppf (w, s) -> Fmt.pf ppf "%s: %d" w s))
    c.per_workload c.fired

let pp ppf r =
  Fmt.pf ppf
    "@[<v>discovery: %d candidates, %d screened out, %d without savings, %d \
     survivor%s@,"
    r.enumerated r.screened_out r.no_savings
    (List.length r.survivors)
    (if List.length r.survivors = 1 then "" else "s");
  List.iter (fun c -> Fmt.pf ppf "%a@," pp_candidate c) r.survivors;
  Fmt.pf ppf "@]"
