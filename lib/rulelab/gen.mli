(** Randomized schema-correct LERA plans and instances over a fixed
    four-relation schema (R0, R1 binary; R2 ternary; EDGE binary), with
    values in a small integer domain so fixpoints stay finite.

    Extracted from the physical-layer equivalence suite so the rule
    verifier ({!Verify}) draws from the same plan distribution that
    checks Naive ≡ Indexed ≡ Parallel. *)

module Lera = Eds_lera.Lera
module Database = Eds_engine.Database

val db : ?seed:int -> unit -> Database.t
(** The canonical instance (deterministic LCG contents; the default seed
    reproduces the historical test fixture byte for byte). *)

val instance : Random.State.t -> Database.t
(** A fresh instance with randomized cardinalities and contents, same
    schema as {!db} (so one [Schema.env] covers every instance). *)

(** {1 qcheck generators}

    Plans are generated together with their arity. *)

val gen_base : (Lera.rel * int) QCheck2.Gen.t
val gen_atom : int list -> Lera.scalar QCheck2.Gen.t
(** A comparison atom over operands of the given arities; column
    references stay in range. *)

val gen_qual : int list -> Lera.scalar QCheck2.Gen.t
val coerce : Lera.rel * int -> int -> Lera.rel
(** Adjust arity with a projection. *)

val gen_rel : int -> (Lera.rel * int) QCheck2.Gen.t
val gen_plan : (Lera.rel * int) QCheck2.Gen.t

val plan : Random.State.t -> Lera.rel * int
(** Draw one plan from {!gen_plan}. *)

val print_plan : Lera.rel * int -> string
