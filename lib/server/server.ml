module Session = Eds.Session
module Repl = Eds.Repl
module Storage = Eds.Storage
module Wal = Eds.Wal
module Eval = Eds_engine.Eval
module Cancel = Eds_engine.Cancel
module Relation = Eds_engine.Relation
module Database = Eds_engine.Database
module Obs = Eds_obs.Obs
module Metrics = Eds_obs.Metrics

type config = {
  host : string;
  port : int;
  max_connections : int;
  backlog : int;
  query_timeout : float option;
  cache_capacity : int;
  slow_query_ms : float option;
  slow_log : (string -> unit) option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    max_connections = 64;
    backlog = 16;
    query_timeout = Some 30.;
    cache_capacity = 256;
    slow_query_ms = None;
    slow_log = None;
  }

(* ------------------------------------------------------------------ *)
(* always-on registry metrics.  Labelled cells are pre-registered at
   module init so the request path touches no registry lock — just an
   assoc lookup over a handful of pairs and an atomic increment. *)

let verbs = [ "select"; "explain"; "write"; "directive"; "admin" ]
let outcomes = [ "ok"; "error"; "timeout" ]

let m_queries =
  List.concat_map
    (fun v ->
      List.map
        (fun o ->
          ( (v, o),
            Metrics.counter ~help:"Requests handled, by verb and outcome"
              ~labels:[ ("verb", v); ("outcome", o) ]
              "eds_queries_total" ))
        outcomes)
    verbs

let query_counter v o = List.assoc (v, o) m_queries

let m_durations =
  List.map
    (fun v ->
      ( v,
        Metrics.histogram ~help:"Request latency in seconds, by verb"
          ~labels:[ ("verb", v) ]
          "eds_query_duration_seconds" ))
    verbs

let duration_of v = List.assoc v m_durations

let m_conn_accepted =
  Metrics.counter ~help:"Connections admitted" "eds_connections_accepted_total"

let m_conn_refused =
  Metrics.counter ~help:"Connections refused by admission control"
    "eds_connections_refused_total"

let m_conn_active =
  Metrics.gauge ~help:"Connections currently being served" "eds_connections_active"

let m_slow = Metrics.counter ~help:"Queries over the slow-query threshold" "eds_slow_queries_total"

type counters = {
  accepted : int;
  refused : int;
  active : int;
  queries_ok : int;
  query_errors : int;
  timeouts : int;
  cache : Plan_cache.stats;
  locks : Rwlock.stats;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  rw : Rwlock.t;  (* writer: everything mutating.  SELECTs do not read-lock:
                     they evaluate against an immutable snapshot *)
  wal : Wal.Manager.handle option;  (* durability; [None] = in-memory only *)
  mutable planner : Planner.t;  (* swapped wholesale by [.load] *)
  state : Mutex.t;  (* guards everything below *)
  mutable accepted : int;
  mutable refused : int;
  mutable active : int;
  mutable queries_ok : int;
  mutable query_errors : int;
  mutable timeouts : int;
  mutable stopping : bool;
  conns : (int, Unix.file_descr) Hashtbl.t;
  mutable conn_threads : Thread.t list;
  mutable accept_thread : Thread.t option;
  mutable next_conn : int;
  mutable collector : Metrics.collector_id option;
}

let locked t f =
  Mutex.lock t.state;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.state) f

let resolve_addr host =
  try Unix.inet_addr_of_string host
  with _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with _ -> failwith (Printf.sprintf "cannot resolve host %S" host))

(* ------------------------------------------------------------------ *)
(* request handling                                                    *)

let help_text =
  "edsd wire protocol — one request per line:\n\
  \  <ESQL statement>   SELECT / TABLE / CREATE / INSERT / DELETE /\n\
  \                     UPDATE / REFRESH (CREATE MATERIALIZED VIEW too)\n\
  \  .<directive>       any edsql shell directive (.help lists them)\n\
  \  EXPLAIN [ANALYZE] SELECT ...   plan report; ANALYZE also executes\n\
  \  VERIFY RULES <rules>   differentially verify a rule pack; it is\n\
  \                     appended to block 'verified' only if clean\n\
  \  HELP               this text\n\
  \  PING               liveness probe\n\
  \  STATS              server + session counters, human-readable\n\
  \  STATS RESET        zero the cumulative counters (generations and WAL\n\
  \                     integrity markers survive)\n\
  \  METRICS            the same as one flat JSON object\n\
  \  METRICS PROM       Prometheus text exposition of the metrics registry\n\
  \  SAVE <path>        dump the database to <path> on the server host\n\
  \  QUIT               close this connection\n\
   responses are framed as \"<ok|error|busy> <nbytes>\\n<payload>\"\n"

let esql_starters =
  [
    "SELECT"; "EXPLAIN"; "CREATE"; "TYPE"; "TABLE"; "INSERT"; "DELETE";
    "UPDATE"; "REFRESH";
  ]

let first_token line =
  match String.index_opt line ' ' with
  | Some i -> String.sub line 0 i
  | None -> line

let rest_after_token line =
  match String.index_opt line ' ' with
  | Some i -> String.trim (String.sub line i (String.length line - i))
  | None -> ""

let all_alpha s =
  s <> ""
  && String.for_all (fun c -> (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z')) s

let with_budget t f =
  match t.cfg.query_timeout with
  | Some budget when budget > 0. -> Cancel.with_timeout budget f
  | _ -> f ()

let render f =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let obs_query t conn_id ~cache ~ts =
  if Obs.enabled () then
    Obs.complete ~cat:"server"
      ~attrs:[ ("conn", Obs.Json.Int conn_id); ("cache", Obs.Json.Str cache) ]
      "server.query" ~ts ~dur:(Obs.now () -. ts);
  ignore t

(* -- slow-query log ------------------------------------------------- *)

let slow_sink_lock = Mutex.create ()

let default_slow_sink line =
  Mutex.lock slow_sink_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock slow_sink_lock)
    (fun () ->
      prerr_endline line;
      flush stderr)

let ms_of s = Float.round (s *. 1e6) /. 1e3  (* µs-precision milliseconds *)

(* One JSON object per line: greppable, and each line parses on its own. *)
let slow_log_line ~conn_id ~query ~total_s ~cache ~parse_s ~translate_s ~rewrite_s
    ~exec_s ~rows ~(work : Eval.stats) ~mv_runs ~mv_fallbacks ~mv_delta =
  Obs.Json.to_string
    (Obs.Json.Obj
       [
         ("ts", Obs.Json.Float (Unix.gettimeofday ()));
         ("conn", Obs.Json.Int conn_id);
         ("query", Obs.Json.Str query);
         ("total_ms", Obs.Json.Float (ms_of total_s));
         ("parse_ms", Obs.Json.Float (ms_of parse_s));
         ("translate_ms", Obs.Json.Float (ms_of translate_s));
         ("rewrite_ms", Obs.Json.Float (ms_of rewrite_s));
         ("execute_ms", Obs.Json.Float (ms_of exec_s));
         ("cache", Obs.Json.Str cache);
         ("rows", Obs.Json.Int rows);
         ("combinations", Obs.Json.Int work.Eval.combinations);
         ("tuples_read", Obs.Json.Int work.Eval.tuples_read);
         ("tuples_produced", Obs.Json.Int work.Eval.tuples_produced);
         ("probes", Obs.Json.Int work.Eval.probes);
         ("builds", Obs.Json.Int work.Eval.builds);
         ( "layout",
           Obs.Json.Str
             (if work.Eval.columnar_ops > 0 then "columnar" else "boxed") );
         ("mv_maintenance_runs", Obs.Json.Int mv_runs);
         ("mv_fallback_recomputes", Obs.Json.Int mv_fallbacks);
         ("mv_delta_tuples", Obs.Json.Int mv_delta);
       ])

let maybe_slow_log t conn_id ~query ~total_s ~cache ~parse_s ~translate_s ~rewrite_s
    ~exec_s ~rows ~work ?(mv_runs = 0) ?(mv_fallbacks = 0) ?(mv_delta = 0) () =
  match t.cfg.slow_query_ms with
  | Some threshold_ms when total_s *. 1000. >= threshold_ms ->
      Metrics.Counter.incr m_slow;
      let sink = Option.value t.cfg.slow_log ~default:default_slow_sink in
      sink
        (slow_log_line ~conn_id ~query ~total_s ~cache ~parse_s ~translate_s
           ~rewrite_s ~exec_s ~rows ~work ~mv_runs ~mv_fallbacks ~mv_delta)
  | _ -> ()

(* SELECTs take no lock at all: evaluation runs against an immutable
   database snapshot, and a cached plan skips the catalog entirely.
   Only a plan-cache miss needs the shared catalog (parse → translate →
   rewrite), so exactly that section runs under the write lock, with a
   double-check inside so racing threads plan a cold query once. *)
let run_select t conn_id line =
  let ts = Obs.now () in
  let planner = t.planner in
  let exclusive f = Rwlock.with_write t.rw f in
  let rel, r = with_budget t (fun () -> Planner.execute_timed ~exclusive planner line) in
  let payload = render (fun ppf -> Repl.print_result ppf (Session.Rows rel)) in
  let cache = match r.Planner.origin with `Hit -> "hit" | `Miss -> "miss" in
  obs_query t conn_id ~cache ~ts;
  maybe_slow_log t conn_id ~query:line ~total_s:(Obs.now () -. ts) ~cache
    ~parse_s:r.Planner.parse_s ~translate_s:r.Planner.translate_s
    ~rewrite_s:r.Planner.rewrite_s ~exec_s:r.Planner.exec_s
    ~rows:(Relation.cardinality rel) ~work:r.Planner.work ();
  `Reply (Protocol.Ok, payload)

(* Mutations serialize under the write lock.  Once a statement has
   applied successfully it is appended to the WAL — still inside the
   lock, so the log order is the commit order — and only then
   acknowledged: a crash after the ack cannot lose it.  EXPLAIN comes
   through here too (it needs the shared catalog); its [Report] result
   is never WAL-logged — replaying an EXPLAIN ANALYZE at recovery would
   re-execute the query. *)
let run_write t conn_id line =
  let ts = Obs.now () in
  (* The WAL append happens inside the write lock (log order = commit
     order), but the fsync wait happens after releasing it: concurrent
     writers then land their frames back-to-back and the group-commit
     leader makes them all durable with one fsync.  The ack still only
     goes out after [sync] returns. *)
  let mv0 =
    let m = Session.mv_stats (Planner.session t.planner) in
    Session.Materializer.
      (m.maintenance_runs, m.fallback_recomputes, m.delta_tuples)
  in
  let payload, commit =
    Rwlock.with_write t.rw (fun () ->
        let session = Planner.session t.planner in
        let result = with_budget t (fun () -> Session.exec_string session line) in
        let commit =
          match (result, t.wal) with
          | (Session.Rows _ | Session.Report _), _ | _, None -> None
          | ( (Session.Done | Session.Inserted _ | Session.Deleted _ | Session.Updated _),
              Some wal ) ->
              Some (wal, Wal.Manager.log_nosync wal line)
        in
        (render (fun ppf -> Repl.print_result ppf result), commit))
  in
  (match commit with
  | Some (wal, watermark) -> Wal.Manager.sync wal watermark
  | None -> ());
  obs_query t conn_id ~cache:"write" ~ts;
  let total_s = Obs.now () -. ts in
  let runs0, fb0, delta0 = mv0 in
  let m = Session.mv_stats (Planner.session t.planner) in
  maybe_slow_log t conn_id ~query:line ~total_s ~cache:"write" ~parse_s:0.
    ~translate_s:0. ~rewrite_s:0. ~exec_s:total_s ~rows:0
    ~work:(Eval.fresh_stats ())
    ~mv_runs:(m.Session.Materializer.maintenance_runs - runs0)
    ~mv_fallbacks:(m.Session.Materializer.fallback_recomputes - fb0)
    ~mv_delta:(m.Session.Materializer.delta_tuples - delta0) ();
  `Reply (Protocol.Ok, payload)

let run_directive t line =
  Rwlock.with_write t.rw (fun () ->
      let session = Planner.session t.planner in
      let buf = Buffer.create 256 in
      let ppf = Format.formatter_of_buffer buf in
      let verdict = Repl.dispatch ppf session line in
      Format.pp_print_flush ppf ();
      let payload = Buffer.contents buf in
      match verdict with
      | `Continue -> `Reply (Protocol.Ok, payload)
      | `Quit -> `Close (Protocol.Ok, payload ^ "bye\n")
      | `Swap session' ->
          (* a fresh session: drop every cached plan with the old
             planner, and re-checkpoint so recovery reflects the
             swapped-in state rather than replaying a log written
             against the old one *)
          t.planner <- Planner.create ~capacity:t.cfg.cache_capacity session';
          (match t.wal with
          | Some wal -> Wal.Manager.checkpoint wal session'
          | None -> ());
          `Reply (Protocol.Ok, payload))

(* STATS/METRICS take no lock either: every ingredient is a monotonic
   counter or an O(1) snapshot read, and the loadgen verifier polls
   METRICS while checking that SELECTs acquire zero read locks. *)
let stats_text t =
  let planner = t.planner in
  let session = Planner.session planner in
  let cache = Planner.cache_stats planner in
  let rw = Rwlock.stats t.rw in
  let accepted, refused, active, ok, errors, timeouts =
    locked t (fun () ->
        (t.accepted, t.refused, t.active, t.queries_ok, t.query_errors, t.timeouts))
  in
  render (fun ppf ->
      Fmt.pf ppf "connections      : %d active, %d accepted, %d refused@." active
        accepted refused;
      Fmt.pf ppf "requests         : %d ok, %d errors, %d timeouts@." ok errors
        timeouts;
      Fmt.pf ppf
        "plan cache       : %d/%d entries, %d hits, %d misses, %d evictions, %d \
         swept (hit rate %.2f)@."
        cache.Plan_cache.size cache.Plan_cache.capacity cache.Plan_cache.hits
        cache.Plan_cache.misses cache.Plan_cache.evictions cache.Plan_cache.swept
        (Plan_cache.hit_rate cache);
      Fmt.pf ppf "plan generation  : %d@." (Session.generation session);
      Fmt.pf ppf "data generation  : %d@." (Session.data_generation session);
      Fmt.pf ppf "rwlock           : %d read, %d write acquisitions@."
        rw.Rwlock.read_acquired rw.Rwlock.write_acquired;
      (match t.wal with
      | None -> Fmt.pf ppf "wal              : disabled@."
      | Some wal ->
          let ws = Wal.Manager.stats wal in
          Fmt.pf ppf
            "wal              : %d records (%d bytes), epoch %d, %d replayed at \
             boot, checkpoint age %.1fs@."
            ws.Wal.Manager.wal_records ws.Wal.Manager.wal_bytes ws.Wal.Manager.epoch
            ws.Wal.Manager.replayed ws.Wal.Manager.checkpoint_age_s;
          Fmt.pf ppf
            "wal group commit : %d commits in %d fsyncs (%.2f fsyncs/commit)@."
            ws.Wal.Manager.commits ws.Wal.Manager.fsyncs
            (if ws.Wal.Manager.commits = 0 then 0.
             else
               float_of_int ws.Wal.Manager.fsyncs
               /. float_of_int ws.Wal.Manager.commits));
      Repl.print_session_stats ppf session)

let metrics t =
  let planner = t.planner in
  let session = Planner.session planner in
  let cache = Planner.cache_stats planner in
  let rw = Rwlock.stats t.rw in
  let es = Session.eval_stats session in
  let accepted, refused, active, ok, errors, timeouts =
    locked t (fun () ->
        (t.accepted, t.refused, t.active, t.queries_ok, t.query_errors, t.timeouts))
  in
  let wal_fields =
    match t.wal with
    | None -> [ ("wal.enabled", Obs.Json.Bool false) ]
    | Some wal ->
        let ws = Wal.Manager.stats wal in
        [
          ("wal.enabled", Obs.Json.Bool true);
          ("wal.records", Obs.Json.Int ws.Wal.Manager.wal_records);
          ("wal.bytes", Obs.Json.Int ws.Wal.Manager.wal_bytes);
          ("wal.epoch", Obs.Json.Int ws.Wal.Manager.epoch);
          ("wal.replayed", Obs.Json.Int ws.Wal.Manager.replayed);
          ("wal.checkpoint_age_s", Obs.Json.Float ws.Wal.Manager.checkpoint_age_s);
          ("wal.fsyncs", Obs.Json.Int ws.Wal.Manager.fsyncs);
          ("wal.commits", Obs.Json.Int ws.Wal.Manager.commits);
        ]
  in
  Obs.Json.Obj
    ([
       ("server.connections.accepted", Obs.Json.Int accepted);
       ("server.connections.refused", Obs.Json.Int refused);
       ("server.connections.active", Obs.Json.Int active);
       ("server.queries.ok", Obs.Json.Int ok);
       ("server.queries.errors", Obs.Json.Int errors);
       ("server.queries.timeouts", Obs.Json.Int timeouts);
       ("server.rwlock.read_acquired", Obs.Json.Int rw.Rwlock.read_acquired);
       ("server.rwlock.write_acquired", Obs.Json.Int rw.Rwlock.write_acquired);
       ("server.plan_cache.hits", Obs.Json.Int cache.Plan_cache.hits);
       ("server.plan_cache.misses", Obs.Json.Int cache.Plan_cache.misses);
       ("server.plan_cache.evictions", Obs.Json.Int cache.Plan_cache.evictions);
       ("server.plan_cache.insertions", Obs.Json.Int cache.Plan_cache.insertions);
       ("server.plan_cache.swept", Obs.Json.Int cache.Plan_cache.swept);
       ("server.plan_cache.size", Obs.Json.Int cache.Plan_cache.size);
       ("server.plan_cache.capacity", Obs.Json.Int cache.Plan_cache.capacity);
       ("server.plan_cache.hit_rate", Obs.Json.Float (Plan_cache.hit_rate cache));
       ("session.statements_run", Obs.Json.Int (Session.statements_run session));
       ("session.generation", Obs.Json.Int (Session.generation session));
       ("session.data_generation", Obs.Json.Int (Session.data_generation session));
       ("session.eval.combinations", Obs.Json.Int es.Eval.combinations);
       ("session.eval.tuples_read", Obs.Json.Int es.Eval.tuples_read);
       ("session.eval.tuples_produced", Obs.Json.Int es.Eval.tuples_produced);
       ("session.eval.probes", Obs.Json.Int es.Eval.probes);
       ("session.eval.builds", Obs.Json.Int es.Eval.builds);
       ("session.eval.fix_iterations", Obs.Json.Int es.Eval.fix_iterations);
       ("session.eval.fix_cache_hits", Obs.Json.Int es.Eval.fix_cache_hits);
       ("session.eval.fix_cache_misses", Obs.Json.Int es.Eval.fix_cache_misses);
     ]
    @ (let m = Session.mv_stats session in
       let entries, invalidations = Session.fix_cache_stats session in
       [
         ( "session.mviews.extents",
           Obs.Json.Int
             (List.length (Session.Materializer.views (Session.mviews session)))
         );
         ( "session.mviews.maintenance_runs",
           Obs.Json.Int m.Session.Materializer.maintenance_runs );
         ( "session.mviews.fallback_recomputes",
           Obs.Json.Int m.Session.Materializer.fallback_recomputes );
         ("session.mviews.refreshes", Obs.Json.Int m.Session.Materializer.refreshes);
         ( "session.mviews.delta_tuples",
           Obs.Json.Int m.Session.Materializer.delta_tuples );
         ( "session.mviews.last_refresh_age_s",
           Obs.Json.Float
             (if m.Session.Materializer.last_refresh > 0. then
                Unix.gettimeofday () -. m.Session.Materializer.last_refresh
              else -1.) );
         ("session.fix_cache.entries", Obs.Json.Int entries);
         ("session.fix_cache.invalidations", Obs.Json.Int invalidations);
       ])
    @ wal_fields)

(* SAVE to the daemon's own database path is a checkpoint: the dump and
   the log truncation must be one atomic step relative to writers, so it
   runs under the write lock.  SAVE elsewhere is a plain (atomic) dump. *)
let run_save t path =
  if path = "" then `Reply (Protocol.Error, "error: usage: SAVE <path>\n")
  else
    Rwlock.with_write t.rw (fun () ->
        let session = Planner.session t.planner in
        match t.wal with
        | Some wal when Wal.Manager.db_path wal = path ->
            Wal.Manager.checkpoint wal session;
            `Reply (Protocol.Ok, Printf.sprintf "saved %s (checkpoint, wal reset)\n" path)
        | _ ->
            Storage.save session path;
            `Reply (Protocol.Ok, Printf.sprintf "saved %s\n" path))

(* VERIFY RULES gates an untrusted pack: the differential verifier runs
   against the session's current program and the pack is appended only
   when clean.  It can mutate the rule program, so it takes the write
   lock like any directive. *)
let run_verify t line =
  let usage = "error: usage: VERIFY RULES <rule text>\n" in
  let rest = rest_after_token line in
  if String.uppercase_ascii (first_token rest) <> "RULES" then
    `Reply (Protocol.Error, usage)
  else
    let text = rest_after_token rest in
    if text = "" then `Reply (Protocol.Error, usage)
    else
      Rwlock.with_write t.rw (fun () ->
          let session = Planner.session t.planner in
          let buf = Buffer.create 256 in
          let ppf = Format.formatter_of_buffer buf in
          let accepted = Repl.verify_rules_text ppf session text in
          Format.pp_print_flush ppf ();
          `Reply
            ( (if accepted then Protocol.Ok else Protocol.Error),
              Buffer.contents buf ))

(* STATS RESET zeroes every cumulative, non-integrity counter: the
   server's own tallies, the plan cache's, the rwlock's, the session's
   evaluator counters, and the registry's resettable cells.  The plan
   and data generations, the WAL epoch and its record/byte counters are
   integrity markers and deliberately survive. *)
let run_stats_reset t =
  Rwlock.with_write t.rw (fun () ->
      Session.reset_stats (Planner.session t.planner);
      Planner.reset_cache_stats t.planner;
      Rwlock.reset_stats t.rw;
      locked t (fun () ->
          t.accepted <- 0;
          t.refused <- 0;
          t.queries_ok <- 0;
          t.query_errors <- 0;
          t.timeouts <- 0);
      Metrics.reset_values ();
      `Reply
        ( Protocol.Ok,
          "stats reset (generations, WAL integrity counters and active \
           connections preserved)\n" ))

let dispatch_line t conn_id line =
  if line.[0] = '.' then run_directive t line
  else
    let token = String.uppercase_ascii (first_token line) in
    if List.mem token esql_starters then
      if token = "SELECT" then run_select t conn_id line else run_write t conn_id line
    else
      match token with
      | "HELP" -> `Reply (Protocol.Ok, help_text)
      | "PING" -> `Reply (Protocol.Ok, "pong\n")
      | "STATS" when String.uppercase_ascii (rest_after_token line) = "RESET" ->
          run_stats_reset t
      | "STATS" -> `Reply (Protocol.Ok, stats_text t)
      | "METRICS" when String.uppercase_ascii (rest_after_token line) = "PROM" ->
          `Reply (Protocol.Ok, Metrics.prometheus ())
      | "METRICS" -> `Reply (Protocol.Ok, Obs.Json.to_string (metrics t) ^ "\n")
      | "SAVE" -> run_save t (rest_after_token line)
      | "VERIFY" -> run_verify t line
      | "QUIT" -> `Close (Protocol.Ok, "bye\n")
      | _ when all_alpha (first_token line) ->
          `Reply
            ( Protocol.Error,
              Printf.sprintf "error: unknown command %s (try HELP)\n" (first_token line)
            )
      | _ ->
          (* let the ESQL parser produce its own error message *)
          run_write t conn_id line

let verb_of_line line =
  if line.[0] = '.' then "directive"
  else
    match String.uppercase_ascii (first_token line) with
    | "SELECT" -> "select"
    | "EXPLAIN" -> "explain"
    | "HELP" | "PING" | "STATS" | "METRICS" | "SAVE" | "VERIFY" | "QUIT" ->
      "admin"
    | _ -> "write"

(* per-line recovery, mirroring the REPL: one bad request must never
   kill the connection, let alone the server.  [Cancel.clear] backstops
   the per-statement budget — a deadline that somehow survived its
   [with_timeout] frame must not poison this thread's next request. *)
let process t conn_id raw =
  let line = String.trim raw in
  if line = "" then `Reply (Protocol.Ok, "")
  else begin
    let verb = verb_of_line line in
    let t0 = Unix.gettimeofday () in
    let finish outcome reply =
      Metrics.Histogram.observe (duration_of verb) (Unix.gettimeofday () -. t0);
      Metrics.Counter.incr (query_counter verb outcome);
      reply
    in
    match
      Fun.protect ~finally:Cancel.clear (fun () -> dispatch_line t conn_id line)
    with
    | reply ->
        let outcome =
          match reply with
          | `Reply (Protocol.Ok, _) | `Close (Protocol.Ok, _) ->
              locked t (fun () -> t.queries_ok <- t.queries_ok + 1);
              "ok"
          | _ ->
              locked t (fun () -> t.query_errors <- t.query_errors + 1);
              "error"
        in
        finish outcome reply
    | exception ((Out_of_memory | Stack_overflow) as fatal) -> raise fatal
    | exception (Cancel.Timeout _ as e) ->
        locked t (fun () -> t.timeouts <- t.timeouts + 1);
        finish "timeout"
          (`Reply (Protocol.Error, "error: " ^ Repl.describe_error e ^ "\n"))
    | exception e ->
        locked t (fun () -> t.query_errors <- t.query_errors + 1);
        finish "error"
          (`Reply (Protocol.Error, "error: " ^ Repl.describe_error e ^ "\n"))
  end

(* ------------------------------------------------------------------ *)
(* connection lifecycle                                                *)

let handle_connection t conn_id fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  if Obs.enabled () then
    Obs.emit
      (Obs.Begin
         {
           name = "server.conn";
           cat = "server";
           ts = Obs.now ();
           attrs = [ ("conn", Obs.Json.Int conn_id) ];
         });
  let finally () =
    if Obs.enabled () then
      Obs.emit
        (Obs.End
           {
             name = "server.conn";
             cat = "server";
             ts = Obs.now ();
             attrs = [ ("conn", Obs.Json.Int conn_id) ];
           });
    locked t (fun () ->
        t.active <- t.active - 1;
        Hashtbl.remove t.conns conn_id);
    Metrics.Gauge.add m_conn_active (-1);
    (try flush oc with _ -> ());
    try Unix.close fd with _ -> ()
  in
  Fun.protect ~finally (fun () ->
      let rec loop () =
        match input_line ic with
        | exception (End_of_file | Sys_error _) -> ()
        | exception Unix.Unix_error _ -> ()
        | raw -> (
            match process t conn_id raw with
            | `Reply (status, payload) -> (
                match Protocol.write_response oc status payload with
                | () -> loop ()
                | exception _ -> ())
            | `Close (status, payload) -> (
                try Protocol.write_response oc status payload with _ -> ()))
      in
      loop ())

let refuse t fd =
  locked t (fun () -> t.refused <- t.refused + 1);
  Metrics.Counter.incr m_conn_refused;
  let payload =
    Printf.sprintf "busy: %d connections active (limit %d), retry later\n"
      t.cfg.max_connections t.cfg.max_connections
  in
  let oc = Unix.out_channel_of_descr fd in
  (try Protocol.write_response oc Protocol.Busy payload with _ -> ());
  try Unix.close fd with _ -> ()

let rec accept_loop t =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) ->
      if t.stopping then () else accept_loop t
  | exception _ -> ()  (* EBADF/EINVAL after stop closed the socket *)
  | fd, _ ->
      if t.stopping then (try Unix.close fd with _ -> ())
      else begin
        let admitted =
          locked t (fun () ->
              if t.active >= t.cfg.max_connections then false
              else begin
                t.accepted <- t.accepted + 1;
                t.active <- t.active + 1;
                t.next_conn <- t.next_conn + 1;
                Hashtbl.replace t.conns t.next_conn fd;
                true
              end)
        in
        if admitted then begin
          Metrics.Counter.incr m_conn_accepted;
          Metrics.Gauge.add m_conn_active 1;
          let conn_id = locked t (fun () -> t.next_conn) in
          let th = Thread.create (fun () -> handle_connection t conn_id fd) () in
          locked t (fun () -> t.conn_threads <- th :: t.conn_threads)
        end
        else refuse t fd;
        accept_loop t
      end

(* ------------------------------------------------------------------ *)

(* Instance-scoped point-in-time state — cache occupancy, generations,
   WAL epoch/age — is exposed through a registry collector rather than
   stored cells: it belongs to this server instance and is read fresh at
   every scrape.  Registered at [start], unregistered at [stop] so a
   later instance in the same process doesn't double-report. *)
let collector_samples t () =
  let session = Planner.session t.planner in
  let cache = Planner.cache_stats t.planner in
  let g name help v =
    {
      Metrics.name;
      help;
      kind = Metrics.K_gauge;
      labels = [];
      value = Metrics.Gauge_v v;
    }
  in
  let m = Session.mv_stats session in
  let fix_entries, _ = Session.fix_cache_stats session in
  [
    g "eds_mview_extents" "Materialized views with stored extents"
      (float_of_int
         (List.length (Session.Materializer.views (Session.mviews session))));
    g "eds_mview_last_refresh_age_seconds"
      "Seconds since the last full (re)compute of any extent (-1 = never)"
      (if m.Session.Materializer.last_refresh > 0. then
         Unix.gettimeofday () -. m.Session.Materializer.last_refresh
       else -1.);
    g "eds_fix_cache_entries" "Shared closed-fixpoint memo entries"
      (float_of_int fix_entries);
    g "eds_plan_cache_entries" "Plans currently cached" (float_of_int cache.Plan_cache.size);
    g "eds_plan_cache_capacity" "Plan-cache capacity" (float_of_int cache.Plan_cache.capacity);
    g "eds_session_generation" "Plan-affecting generation (integrity marker)"
      (float_of_int (Session.generation session));
    g "eds_session_data_generation" "Data epoch (integrity marker)"
      (float_of_int (Session.data_generation session));
  ]
  @
  match t.wal with
  | None -> []
  | Some wal ->
      let ws = Wal.Manager.stats wal in
      [
        g "eds_wal_epoch" "WAL checkpoint epoch (integrity marker)"
          (float_of_int ws.Wal.Manager.epoch);
        g "eds_wal_checkpoint_age_seconds" "Seconds since boot or last checkpoint"
          ws.Wal.Manager.checkpoint_age_s;
      ]

let start ?(config = default_config) ?wal session =
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let t =
    try
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (resolve_addr config.host, config.port));
      Unix.listen fd config.backlog;
      let bound_port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> assert false
      in
      {
        cfg = config;
        listen_fd = fd;
        bound_port;
        rw = Rwlock.create ();
        wal;
        planner = Planner.create ~capacity:config.cache_capacity session;
        state = Mutex.create ();
        accepted = 0;
        refused = 0;
        active = 0;
        queries_ok = 0;
        query_errors = 0;
        timeouts = 0;
        stopping = false;
        conns = Hashtbl.create 16;
        conn_threads = [];
        accept_thread = None;
        next_conn = 0;
        collector = None;
      }
    with e ->
      (try Unix.close fd with _ -> ());
      raise e
  in
  t.collector <- Some (Metrics.register_collector (collector_samples t));
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let port t = t.bound_port
let config t = t.cfg
let session t = Planner.session t.planner
let wal t = t.wal

let counters t =
  let cache = Planner.cache_stats t.planner in
  let locks = Rwlock.stats t.rw in
  locked t (fun () ->
      {
        accepted = t.accepted;
        refused = t.refused;
        active = t.active;
        queries_ok = t.queries_ok;
        query_errors = t.query_errors;
        timeouts = t.timeouts;
        cache;
        locks;
      })

let checkpoint t =
  Rwlock.with_write t.rw (fun () ->
      match t.wal with
      | Some wal -> Wal.Manager.checkpoint wal (Planner.session t.planner)
      | None -> ())

let stop t =
  let already = locked t (fun () ->
      let s = t.stopping in
      t.stopping <- true;
      s)
  in
  if not already then begin
    (match t.collector with
    | Some id ->
        Metrics.unregister_collector id;
        t.collector <- None
    | None -> ());
    (* wake the accept loop with a throwaway connection, then close *)
    (try
       let wake = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       let host = if t.cfg.host = "0.0.0.0" then "127.0.0.1" else t.cfg.host in
       (try Unix.connect wake (Unix.ADDR_INET (resolve_addr host, t.bound_port))
        with _ -> ());
       Unix.close wake
     with _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with _ -> ());
    (* sever live connections: their blocked [input_line] sees EOF *)
    let fds = locked t (fun () -> Hashtbl.fold (fun _ fd acc -> fd :: acc) t.conns []) in
    List.iter (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ()) fds;
    let threads = locked t (fun () -> t.conn_threads) in
    List.iter Thread.join threads
  end
