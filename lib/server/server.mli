(** The edsd TCP query server.

    One process serves many concurrent connections against a single
    shared {!Eds.Session}.  SELECTs plan through the shared
    {!Plan_cache} (via {!Planner}) and evaluate {e without any lock}
    against an immutable copy-on-write database snapshot
    ({!Eds.Session.snapshot_db}); only a plan-cache miss — which must
    read the shared catalog — briefly takes the write lock, with a
    double-check so racing threads plan a cold query once.  Every
    mutating statement and [.directive] runs exclusively under the
    write side; under WAL-backed durability ({!start}'s [wal]) each
    committed DML/DDL statement is appended and fsync'd before it is
    acknowledged.  Each statement gets a wall-clock budget enforced
    cooperatively by {!Eds_engine.Cancel}: an overrunning query dies
    with an [error] response, the connection survives.

    Admission control: at most [max_connections] connections are served
    at once; beyond that, [backlog] connections queue in the kernel and
    each one popped over the cap is refused with a one-shot [busy]
    response.  See {!Protocol} for the wire format. *)

module Session = Eds.Session
module Wal = Eds.Wal

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 = ephemeral; read the bound port with {!port} *)
  max_connections : int;  (** served concurrently; extras get [busy] *)
  backlog : int;  (** kernel accept-queue bound *)
  query_timeout : float option;  (** per-statement budget, seconds *)
  cache_capacity : int;  (** shared plan-cache entries *)
  slow_query_ms : float option;
      (** log every request at least this slow (milliseconds); [None]
          disables the slow-query log *)
  slow_log : (string -> unit) option;
      (** sink for slow-query JSON lines (one object per line: query
          text, total and per-phase latency, cache origin, work
          counters).  Default: stderr, mutex-protected. *)
}

val default_config : config
(** [127.0.0.1:0], 64 connections, backlog 16, 30 s timeout, 256
    plans, no slow-query log. *)

type counters = {
  accepted : int;  (** connections admitted *)
  refused : int;  (** connections turned away with [busy] *)
  active : int;  (** connections being served right now *)
  queries_ok : int;  (** requests answered [ok] *)
  query_errors : int;  (** requests answered [error] (excl. timeouts) *)
  timeouts : int;  (** requests killed by the query budget *)
  cache : Plan_cache.stats;
  locks : Rwlock.stats;
      (** [read_acquired] stays zero across any pure-SELECT workload —
          the observable proof that snapshot reads are lock-free *)
}

type t

val start : ?config:config -> ?wal:Wal.Manager.handle -> Session.t -> t
(** Bind, listen and spawn the accept thread; returns immediately.  The
    session must not be used by the caller concurrently with the
    running server (hand it over).  [wal] (from
    {!Wal.Manager.recover}) turns on durability: committed writes are
    logged-then-acknowledged, [SAVE <db-path>] checkpoints and resets
    the log, and a [.load] over the wire re-checkpoints so recovery
    reflects the swapped-in session. *)

val port : t -> int
(** The actually-bound port (useful with [port = 0]). *)

val config : t -> config
val session : t -> Session.t
(** The session currently served — [.load] over the wire swaps it. *)

val wal : t -> Wal.Manager.handle option

val checkpoint : t -> unit
(** Checkpoint under the write lock (no-op without a WAL) — the clean
    path for a daemon shutting down, so restart replays nothing. *)

val counters : t -> counters
val metrics : t -> Eds_obs.Obs.Json.t
(** The [METRICS] wire payload: a flat JSON object of server,
    plan-cache, rwlock, WAL and session counters. *)

val stop : t -> unit
(** Stop accepting, sever every live connection, join all threads.
    Idempotent.  The session survives (e.g. to save it). *)
