(** Load generator for the query server: drives N concurrent client
    connections over a paper-shape workload (Figure-8 style
    selection-pushdown joins over FILM/APPEARS_IN, an R ⋈ S ⋈ T chain
    join, and a recursive reachability view), and verifies every
    response byte-for-byte against a local single-session replay.

    The workload is deliberately wire-expressible (plain columns, no
    object values), so the exact same statements can be replayed
    through {!Eds.Session.exec_string} to produce the expected
    payloads. *)

module Session = Eds.Session

val setup_statements : string list
(** DDL + INSERTs, one statement per line, executable in order over the
    wire or locally. *)

val queries : string list
(** The mixed query set; client [i] starts at offset [i] and cycles. *)

val apply_setup : Session.t -> unit
(** Replay {!setup_statements} into a local session. *)

val setup_over_wire : Client.t -> unit
(** Replay {!setup_statements} over one connection; raises [Failure] on
    any non-[ok] response. *)

val expected_payloads : Session.t -> (string * string) list
(** [query → rendered payload] for every entry of {!queries}, computed
    by the given session exactly as the server renders results.  Call
    it on a fresh session after {!apply_setup}. *)

(** {1 Mixed read/write workload} *)

val mix_table : int -> string
(** Client [i]'s private table, ["MIX_<i>"] — writes never collide
    across clients, so every response is verifiable. *)

val mix_ddl : int -> string
(** The DDL creating {!mix_table}[ i]. *)

val mixed_op :
  index:int -> int -> [ `Write of string | `Shared_read of string | `Private_read of string ]
(** Deterministic op [j] of client [index]: per 5 ops, an INSERT and an
    UPDATE/DELETE on the private table, a shared-table read and two
    private-table reads. *)

type outcome = {
  clients : int;
  per_client : int;
  total : int;  (** requests attempted *)
  ok : int;
  writes : int;  (** [ok] responses that were write acks (mixed mode) *)
  errors : int;  (** [error] responses *)
  busy : int;  (** [busy] refusals *)
  protocol_errors : int;  (** malformed frames *)
  dropped_connections : int;  (** connections that died mid-run *)
  elapsed_s : float;
  qps : float;  (** ok responses per second *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  bit_identical : bool;
      (** every [ok] payload matched the expected rendering (vacuously
          true when no expectations were supplied) *)
  cache_hits : int;  (** plan-cache hit delta over the run *)
  cache_misses : int;
  hit_rate : float;  (** of the deltas; 0 when nothing ran *)
  wal_fsyncs : int;
      (** WAL fsync delta over the run; with group commit under write
          concurrency this is strictly less than [wal_commits] *)
  wal_commits : int;  (** durable-commit delta; 0 when the WAL is off *)
  server_p50_ms : float;
      (** quantiles of the run's delta of the server-side
          [eds_query_duration_seconds{verb="select"}] histogram, fetched
          via [METRICS PROM] before and after the fan-out; 0 when the
          fetch failed or nothing was recorded *)
  server_p95_ms : float;
  server_p99_ms : float;
  ping_p50_ms : float;
      (** round-trip percentiles of no-op PINGs interleaved into the
          load (one per four requests): the transport + scheduling floor
          a query's RTT pays on top of server-side processing, measured
          under the same concurrency *)
  ping_p95_ms : float;
  ping_p99_ms : float;
  client_mean_ms : float;  (** mean query round-trip *)
  ping_mean_ms : float;  (** mean no-op round-trip: the floor *)
  server_mean_ms : float;
      (** server-side histogram sum/count over the run's delta *)
  server_within_client : bool;
      (** the structural direction alone: at each of p50/p95/p99 the
          server-side quantile never exceeds the client-side value by
          more than one log₂ bucket (server processing is a component
          of the client round trip).  Holds regardless of queueing, so
          it is the part safe to gate when the loadgen shares a runtime
          with the server (in-process benchmarks). *)
  percentiles_agree : bool;
      (** the server-side histogram is consistent with the client-side
          measurements: at each of p50/p95/p99 the server quantile never
          exceeds the client value by more than one log₂ bucket
          (processing is a component of the round trip); the mean
          identity E[RTT] = E[ping floor] + E[service] holds within the
          largest of 0.5 ms, the server mean, and half the ping mean
          (the floor estimate's own uncertainty scales with the floor);
          and at the median — where ranks are stable — the
          floor-adjusted client value matches the server value within
          one bucket width plus the same 0.5 ms scheduling allowance.
          Queue waits do not correspond rank-by-rank across the two
          vantage points, so tail quantiles are bounded, not equated.
          Vacuously true when no server-side data was recorded. *)
}

val run :
  ?host:string ->
  ?expected:(string * string) list ->
  port:int ->
  clients:int ->
  per_client:int ->
  unit ->
  outcome
(** Fan out [clients] connections, each issuing [per_client] requests
    round-robin over {!queries}, and aggregate.  Plan-cache deltas are
    read from [METRICS] before and after. *)

val run_mixed :
  ?host:string ->
  ?physical:Session.Eval.Physical.t ->
  ?expected:(string * string) list ->
  port:int ->
  clients:int ->
  per_client:int ->
  unit ->
  outcome
(** Mixed read/write fan-out: client [i] creates its private
    {!mix_table} and issues {!mixed_op}s, checking {e every} ok
    response — write acks and private reads against a per-client local
    oracle session replaying the same statements ([physical] must match
    the server session's layer for row-order-identical renderings),
    shared reads against [expected]. *)

(** {1 Materialized-view maintenance workload} *)

val mview_table : int -> string
(** Client [i]'s private edge table, ["MVE_<i>"]. *)

val mview_name : int -> string
(** Client [i]'s private recursive materialized view, ["MVR_<i>"]. *)

val mview_ddl : int -> string list
(** DDL creating {!mview_table}[ i] and a recursive
    [CREATE MATERIALIZED VIEW] {!mview_name}[ i] computing its
    transitive closure. *)

val mview_op :
  index:int -> int -> [ `Write of string | `Shared_read of string | `Private_read of string ]
(** Deterministic op [j] of client [index]: per 6 ops, edge INSERTs
    (occasionally a DELETE), full and filtered reads of the maintained
    extent, a shared recursive read, and a [REFRESH]. *)

val run_mview :
  ?host:string ->
  ?physical:Session.Eval.Physical.t ->
  ?expected:(string * string) list ->
  port:int ->
  clients:int ->
  per_client:int ->
  unit ->
  outcome
(** Materialized-view fan-out: client [i] creates {!mview_table} and
    {!mview_name} and issues {!mview_op}s; every ok response — DML
    acks, REFRESH acks and maintained-extent reads — is verified
    byte-for-byte against a per-client oracle session replaying the
    same statements, so incremental maintenance under concurrent load
    is checked against full local recomputation. *)

val pp_outcome : Format.formatter -> outcome -> unit

val percentile : float array -> float -> float
(** [percentile sorted p] for [p] in [0,100] over an ascending array:
    linear interpolation between the two straddling ranks. *)

val histogram_of_prom :
  name:string ->
  label:string ->
  string ->
  Eds_obs.Metrics.Histogram.snapshot option
(** Rebuild a histogram snapshot from Prometheus text exposition,
    restricted to series whose label block contains [label] verbatim
    (e.g. [verb="select"]).  [None] when no matching series appears. *)
