(** Load generator for the query server: drives N concurrent client
    connections over a paper-shape workload (Figure-8 style
    selection-pushdown joins over FILM/APPEARS_IN, an R ⋈ S ⋈ T chain
    join, and a recursive reachability view), and verifies every
    response byte-for-byte against a local single-session replay.

    The workload is deliberately wire-expressible (plain columns, no
    object values), so the exact same statements can be replayed
    through {!Eds.Session.exec_string} to produce the expected
    payloads. *)

module Session = Eds.Session

val setup_statements : string list
(** DDL + INSERTs, one statement per line, executable in order over the
    wire or locally. *)

val queries : string list
(** The mixed query set; client [i] starts at offset [i] and cycles. *)

val apply_setup : Session.t -> unit
(** Replay {!setup_statements} into a local session. *)

val setup_over_wire : Client.t -> unit
(** Replay {!setup_statements} over one connection; raises [Failure] on
    any non-[ok] response. *)

val expected_payloads : Session.t -> (string * string) list
(** [query → rendered payload] for every entry of {!queries}, computed
    by the given session exactly as the server renders results.  Call
    it on a fresh session after {!apply_setup}. *)

(** {1 Mixed read/write workload} *)

val mix_table : int -> string
(** Client [i]'s private table, ["MIX_<i>"] — writes never collide
    across clients, so every response is verifiable. *)

val mix_ddl : int -> string
(** The DDL creating {!mix_table}[ i]. *)

val mixed_op :
  index:int -> int -> [ `Write of string | `Shared_read of string | `Private_read of string ]
(** Deterministic op [j] of client [index]: per 5 ops, an INSERT and an
    UPDATE/DELETE on the private table, a shared-table read and two
    private-table reads. *)

type outcome = {
  clients : int;
  per_client : int;
  total : int;  (** requests attempted *)
  ok : int;
  writes : int;  (** [ok] responses that were write acks (mixed mode) *)
  errors : int;  (** [error] responses *)
  busy : int;  (** [busy] refusals *)
  protocol_errors : int;  (** malformed frames *)
  dropped_connections : int;  (** connections that died mid-run *)
  elapsed_s : float;
  qps : float;  (** ok responses per second *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  bit_identical : bool;
      (** every [ok] payload matched the expected rendering (vacuously
          true when no expectations were supplied) *)
  cache_hits : int;  (** plan-cache hit delta over the run *)
  cache_misses : int;
  hit_rate : float;  (** of the deltas; 0 when nothing ran *)
}

val run :
  ?host:string ->
  ?expected:(string * string) list ->
  port:int ->
  clients:int ->
  per_client:int ->
  unit ->
  outcome
(** Fan out [clients] connections, each issuing [per_client] requests
    round-robin over {!queries}, and aggregate.  Plan-cache deltas are
    read from [METRICS] before and after. *)

val run_mixed :
  ?host:string ->
  ?physical:Session.Eval.Physical.t ->
  ?expected:(string * string) list ->
  port:int ->
  clients:int ->
  per_client:int ->
  unit ->
  outcome
(** Mixed read/write fan-out: client [i] creates its private
    {!mix_table} and issues {!mixed_op}s, checking {e every} ok
    response — write acks and private reads against a per-client local
    oracle session replaying the same statements ([physical] must match
    the server session's layer for row-order-identical renderings),
    shared reads against [expected]. *)

val pp_outcome : Format.formatter -> outcome -> unit
