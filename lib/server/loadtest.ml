module Session = Eds.Session
module Repl = Eds.Repl
module Obs = Eds_obs.Obs
module Metrics = Eds_obs.Metrics

(* -- the workload -------------------------------------------------------- *)

(* Figure-8 shape: films and appearances, joined with a pushable
   selection.  Kept to plain INT/CHAR columns so the identical text
   works over the wire and through Session.exec_string. *)

let n_films = 40

let setup_statements =
  let ddl =
    [
      "TABLE FILM (Numf : INT, Title : CHAR)";
      "TABLE APPEARS_IN (Numf : INT, Actor : CHAR)";
      "TABLE EDGE (Src : INT, Dst : INT)";
      "TABLE R (A : INT, J : INT)";
      "TABLE S (J : INT, K : INT)";
      "TABLE T (K : INT, B : INT)";
      "CREATE VIEW REACH (Src, Dst) AS ( SELECT Src, Dst FROM EDGE UNION \
       SELECT E1.Src, E2.Dst FROM REACH E1, REACH E2 WHERE E1.Dst = E2.Src )";
    ]
  in
  let films =
    List.init n_films (fun i ->
        Printf.sprintf "INSERT INTO FILM VALUES (%d, 'F%d')" i i)
  in
  let appearances =
    List.concat
      (List.init n_films (fun i ->
           [
             Printf.sprintf "INSERT INTO APPEARS_IN VALUES (%d, 'A%d')" i (i mod 7);
             Printf.sprintf "INSERT INTO APPEARS_IN VALUES (%d, 'A%d')" i
               (((i * 3) + 1) mod 11);
           ]))
  in
  (* a 12-node chain: REACH closes to 66 tuples, selections stay small *)
  let edges =
    List.init 11 (fun i ->
        Printf.sprintf "INSERT INTO EDGE VALUES (%d, %d)" (i + 1) (i + 2))
  in
  let r =
    List.init 20 (fun i -> Printf.sprintf "INSERT INTO R VALUES (%d, %d)" i (i mod 6))
  in
  let s =
    List.concat
      (List.init 6 (fun j ->
           List.init 4 (fun k ->
               Printf.sprintf "INSERT INTO S VALUES (%d, %d)" j k)))
  in
  let t =
    List.init 4 (fun k -> Printf.sprintf "INSERT INTO T VALUES (%d, %d)" k (k * 10))
  in
  ddl @ films @ appearances @ edges @ r @ s @ t

let queries =
  [
    "SELECT Title FROM FILM, APPEARS_IN WHERE FILM.Numf = APPEARS_IN.Numf AND \
     APPEARS_IN.Actor = 'A3'";
    "SELECT Actor FROM FILM, APPEARS_IN WHERE FILM.Numf = APPEARS_IN.Numf AND \
     FILM.Numf = 7";
    "SELECT Title FROM FILM WHERE Numf = 11";
    "SELECT R.A, T.B FROM R, S, T WHERE R.J = S.J AND S.K = T.K";
    "SELECT R.A, T.B FROM R, S, T WHERE R.J = S.J AND S.K = T.K AND T.B = 20";
    "SELECT Dst FROM REACH WHERE Src = 2";
    "SELECT Src FROM REACH WHERE Dst = 9";
    "SELECT Title FROM FILM, APPEARS_IN WHERE FILM.Numf = APPEARS_IN.Numf AND \
     FILM.Numf = 3";
  ]

let apply_setup session =
  List.iter (fun stmt -> ignore (Session.exec_string session stmt)) setup_statements

let setup_over_wire client =
  List.iter
    (fun stmt ->
      match Client.request client stmt with
      | Protocol.Ok, _ -> ()
      | status, payload ->
          failwith
            (Printf.sprintf "setup statement %S answered %s: %s" stmt
               (Protocol.status_to_string status)
               (String.trim payload)))
    setup_statements

let render_result result =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Repl.print_result ppf result;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let render_rows rel = render_result (Session.Rows rel)

let expected_payloads session =
  List.map (fun q -> (q, render_rows (Session.query session q))) queries

let n_queries = List.length queries
let query_at i = List.nth queries (i mod n_queries)

(* -- the mixed read/write workload ---------------------------------------- *)

(* Each client owns a private table: writes never collide across
   clients, so every response — write acks included — can be verified
   byte-for-byte against a per-client oracle session that replays the
   same statements locally.  Shared-table reads are interleaved to keep
   the snapshot read path under pressure while the writers churn. *)

let mix_table index = Printf.sprintf "MIX_%d" index
let mix_ddl index = Printf.sprintf "TABLE %s (K : INT, V : INT)" (mix_table index)

(* deterministic op [j] of client [index]: 2 writes and 3 reads per 5 *)
let mixed_op ~index j =
  let t = mix_table index in
  match j mod 5 with
  | 0 -> `Write (Printf.sprintf "INSERT INTO %s VALUES (%d, %d)" t j ((j * 7) mod 100))
  | 1 -> `Private_read (Printf.sprintf "SELECT V FROM %s WHERE K = %d" t (j - 1))
  | 2 -> `Shared_read (query_at (index + j))
  | 3 ->
      `Write
        (if j mod 10 = 3 then
           Printf.sprintf "UPDATE %s SET V = %d WHERE K = %d" t (j mod 50) (j - 3)
         else Printf.sprintf "DELETE FROM %s WHERE K = %d" t (j - 3))
  | _ -> `Private_read (Printf.sprintf "SELECT K, V FROM %s" t)

(* -- the materialized-view maintenance workload --------------------------- *)

(* Client [i] owns a private edge table and a private {e materialized}
   recursive reachability view over it, so every maintained extent the
   server serves back — after INSERTs, DELETEs and explicit REFRESHes —
   is verified byte-for-byte against the client's oracle session
   replaying the same statements.  Shared reads (including the expanded
   recursive REACH queries) interleave like the mixed mode. *)

let mview_table index = Printf.sprintf "MVE_%d" index
let mview_name index = Printf.sprintf "MVR_%d" index

let mview_ddl index =
  let t = mview_table index and v = mview_name index in
  [
    Printf.sprintf "TABLE %s (Src : INT, Dst : INT)" t;
    Printf.sprintf
      "CREATE MATERIALIZED VIEW %s (A, B) AS ( SELECT Src, Dst FROM %s UNION \
       SELECT E.Src, %s.B FROM %s E, %s WHERE E.Dst = %s.A )"
      v t v t v v;
  ]

(* deterministic op [j] of client [index], per 6: an INSERT, a full
   extent read, a shared read, a DELETE or second INSERT, a filtered
   extent read, and a REFRESH.  Edges live on 11 nodes so the closure
   develops chains and cycles quickly. *)
let mview_op ~index j =
  let t = mview_table index and v = mview_name index in
  match j mod 6 with
  | 0 ->
      `Write
        (Printf.sprintf "INSERT INTO %s VALUES (%d, %d)" t (j mod 11)
           (((j * 5) + 1) mod 11))
  | 1 -> `Private_read (Printf.sprintf "SELECT %s.A, %s.B FROM %s" v v v)
  | 2 -> `Shared_read (query_at (index + j))
  | 3 ->
      `Write
        (if j mod 12 = 3 then
           Printf.sprintf "DELETE FROM %s WHERE Src = %d" t ((j / 2) mod 11)
         else
           Printf.sprintf "INSERT INTO %s VALUES (%d, %d)" t
             (((j * 7) + 2) mod 11)
             (((j * 3) + 4) mod 11))
  | 4 ->
      `Private_read
        (Printf.sprintf "SELECT %s.B FROM %s WHERE %s.A = %d" v v v (j mod 11))
  | _ -> `Write (Printf.sprintf "REFRESH %s" v)

(* -- the fan-out --------------------------------------------------------- *)

type outcome = {
  clients : int;
  per_client : int;
  total : int;
  ok : int;
  writes : int;
  errors : int;
  busy : int;
  protocol_errors : int;
  dropped_connections : int;
  elapsed_s : float;
  qps : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  bit_identical : bool;
  cache_hits : int;
  cache_misses : int;
  hit_rate : float;
  wal_fsyncs : int;
  wal_commits : int;
  server_p50_ms : float;
  server_p95_ms : float;
  server_p99_ms : float;
  ping_p50_ms : float;
  ping_p95_ms : float;
  ping_p99_ms : float;
  client_mean_ms : float;
  ping_mean_ms : float;
  server_mean_ms : float;  (** histogram sum/count of the run's delta *)
  server_within_client : bool;
  percentiles_agree : bool;
}

type worker = {
  mutable w_ok : int;
  mutable w_writes : int;
  mutable w_errors : int;
  mutable w_busy : int;
  mutable w_protocol : int;
  mutable w_dropped : int;
  mutable w_sent : int;
  mutable w_mismatch : int;
  mutable w_latencies : float list;  (** ms, newest first *)
  mutable w_ping_latencies : float list;
      (** round-trips of no-op PINGs interleaved into the load: the
          transport + scheduling floor a query's RTT pays on top of
          server-side processing *)
}

let fresh_worker () =
  {
    w_ok = 0;
    w_writes = 0;
    w_errors = 0;
    w_busy = 0;
    w_protocol = 0;
    w_dropped = 0;
    w_sent = 0;
    w_mismatch = 0;
    w_latencies = [];
    w_ping_latencies = [];
  }

(* One no-op PING per few requests, recorded separately: its RTT under
   the very same load measures everything a query round-trip pays
   {e besides} server-side processing (syscalls, wire, and waiting for
   the server's runtime lock behind the other clients). *)
let record_ping client w =
  let t0 = Unix.gettimeofday () in
  match Client.request client "PING" with
  | Protocol.Ok, _ ->
      w.w_ping_latencies <-
        ((Unix.gettimeofday () -. t0) *. 1000.) :: w.w_ping_latencies
  | _ -> ()

(* one METRICS round trip: plan-cache hits/misses plus the WAL's
   group-commit tallies (0 when the server runs without a WAL) *)
let server_counters ~host ~port =
  let zero = (0, 0, 0, 0) in
  match Client.connect ~host port with
  | exception _ -> zero
  | client ->
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          match Client.request client "METRICS" with
          | Protocol.Ok, payload -> (
              match Obs.Json.parse (String.trim payload) with
              | Ok json ->
                  let geti key =
                    match Obs.Json.member key json with
                    | Some v -> Option.value ~default:0 (Obs.Json.to_int v)
                    | None -> 0
                  in
                  ( geti "server.plan_cache.hits",
                    geti "server.plan_cache.misses",
                    geti "wal.fsyncs",
                    geti "wal.commits" )
              | Error _ -> zero)
          | _ -> zero
          | exception _ -> zero)

let worker_body ~host ~port ~expected ~per_client ~index w =
  match Client.connect ~host port with
  | exception _ -> w.w_dropped <- w.w_dropped + 1
  | client -> (
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          try
            for j = 0 to per_client - 1 do
              if j mod 4 = 3 then record_ping client w;
              let q = query_at (index + j) in
              w.w_sent <- w.w_sent + 1;
              let t0 = Unix.gettimeofday () in
              match Client.request client q with
              | Protocol.Ok, payload ->
                  w.w_latencies <-
                    ((Unix.gettimeofday () -. t0) *. 1000.) :: w.w_latencies;
                  w.w_ok <- w.w_ok + 1;
                  (match List.assoc_opt q expected with
                  | Some want when want <> payload -> w.w_mismatch <- w.w_mismatch + 1
                  | _ -> ())
              | Protocol.Error, _ -> w.w_errors <- w.w_errors + 1
              | Protocol.Busy, _ -> w.w_busy <- w.w_busy + 1
            done
          with
          | End_of_file | Unix.Unix_error _ | Sys_error _ ->
              w.w_dropped <- w.w_dropped + 1
          | Failure _ -> w.w_protocol <- w.w_protocol + 1))

(* Linear interpolation between the two ranks straddling p (the
   "exclusive" definition used by most monitoring stacks): continuous in
   p and far less grid-snapped than nearest-rank on small samples, so it
   compares meaningfully against the server histogram's interpolated
   quantiles. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = max 0 (min (n - 2) (int_of_float (Float.floor rank))) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(lo + 1) -. sorted.(lo)))
  end

(* -- server-side latency via the Prometheus exposition -------------------- *)

let contains line sub =
  let n = String.length line and m = String.length sub in
  let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
  m = 0 || go 0

let line_value line =
  match String.rindex_opt line ' ' with
  | None -> None
  | Some i ->
      float_of_string_opt (String.sub line (i + 1) (String.length line - i - 1))

let le_of_line line =
  match String.index_opt line '{' with
  | None -> None
  | Some _ -> (
      let marker = "le=\"" in
      let rec find i =
        if i + String.length marker > String.length line then None
        else if String.sub line i (String.length marker) = marker then
          let start = i + String.length marker in
          String.index_from_opt line start '"'
          |> Option.map (fun stop -> String.sub line start (stop - start))
        else find (i + 1)
      in
      match find 0 with
      | Some "+Inf" -> Some infinity
      | Some s -> float_of_string_opt s
      | None -> None)

(* Rebuild a {!Metrics.Histogram.snapshot} for [name] restricted to the
   series carrying [label] (e.g. [verb="select"]) from Prometheus text:
   the fixed log₂ bucket layout means the [le] bounds map 1:1 onto
   {!Metrics.Histogram.bounds}, so cumulative wire buckets de-cumulate
   straight into a snapshot that merges and quantiles like a local one. *)
let histogram_of_prom ~name ~label text =
  let nbuckets = Array.length Metrics.Histogram.bounds + 1 in
  let cumulative = Array.make nbuckets 0 in
  let sum = ref 0. in
  let seen = ref false in
  List.iter
    (fun line ->
      if String.starts_with ~prefix:(name ^ "_bucket{") line && contains line label
      then (
        match (le_of_line line, line_value line) with
        | Some le, Some v ->
            seen := true;
            cumulative.(Metrics.Histogram.bucket_index le) <- int_of_float v
        | _ -> ())
      else if String.starts_with ~prefix:(name ^ "_sum{") line && contains line label
      then
        match line_value line with
        | Some v ->
            seen := true;
            sum := v
        | None -> ())
    (String.split_on_char '\n' text);
  if not !seen then None
  else begin
    let counts =
      Array.init nbuckets (fun i ->
          if i = 0 then cumulative.(0) else max 0 (cumulative.(i) - cumulative.(i - 1)))
    in
    Some { Metrics.Histogram.counts; sum = !sum }
  end

let select_latency_snapshot ~host ~port =
  match Client.connect ~host port with
  | exception _ -> None
  | client -> (
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          match Client.request client "METRICS PROM" with
          | Protocol.Ok, payload ->
              histogram_of_prom ~name:"eds_query_duration_seconds"
                ~label:"verb=\"select\"" payload
          | _ -> None
          | exception _ -> None))

(* Each client owns private relations, so its write acks and private
   reads are checked against a per-client oracle session replaying the
   same statements; shared-table reads check against [expected] like
   the read-only mode.  [ddl] gives the client's private schema and
   [op] its deterministic statement stream — the mixed and the
   materialized-view workloads differ only in those two. *)
let verified_worker_body ~host ~port ~physical ~expected ~ddl ~op ~per_client
    ~index w =
  match Client.connect ~host port with
  | exception _ -> w.w_dropped <- w.w_dropped + 1
  | client -> (
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          try
            let oracle = Session.create () in
            Session.set_physical oracle physical;
            List.iter
              (fun stmt ->
                match Client.request client stmt with
                | Protocol.Ok, _ -> ignore (Session.exec_string oracle stmt)
                | _, payload ->
                    failwith
                      (Printf.sprintf "private setup for client %d: %s" index
                         (String.trim payload)))
              (ddl index);
            for j = 0 to per_client - 1 do
              if j mod 4 = 3 then record_ping client w;
              let op = op ~index j in
              let stmt =
                match op with
                | `Write s | `Shared_read s | `Private_read s -> s
              in
              w.w_sent <- w.w_sent + 1;
              let t0 = Unix.gettimeofday () in
              match Client.request client stmt with
              | Protocol.Ok, payload -> (
                  w.w_latencies <-
                    ((Unix.gettimeofday () -. t0) *. 1000.) :: w.w_latencies;
                  w.w_ok <- w.w_ok + 1;
                  match op with
                  | `Shared_read _ -> (
                      match List.assoc_opt stmt expected with
                      | Some want when want <> payload ->
                          w.w_mismatch <- w.w_mismatch + 1
                      | _ -> ())
                  | `Write _ ->
                      w.w_writes <- w.w_writes + 1;
                      if render_result (Session.exec_string oracle stmt) <> payload
                      then w.w_mismatch <- w.w_mismatch + 1
                  | `Private_read _ ->
                      if render_rows (Session.query oracle stmt) <> payload then
                        w.w_mismatch <- w.w_mismatch + 1)
              | Protocol.Error, _ -> w.w_errors <- w.w_errors + 1
              | Protocol.Busy, _ -> w.w_busy <- w.w_busy + 1
            done
          with
          | End_of_file | Unix.Unix_error _ | Sys_error _ ->
              w.w_dropped <- w.w_dropped + 1
          | Failure _ -> w.w_protocol <- w.w_protocol + 1
          | Session.Session_error _ -> w.w_protocol <- w.w_protocol + 1))

let fan_out ~host ~port ~clients ~per_client body =
  let hits0, misses0, fsyncs0, commits0 = server_counters ~host ~port in
  let hist0 = select_latency_snapshot ~host ~port in
  let workers = Array.init clients (fun _ -> fresh_worker ()) in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun i -> Thread.create (fun () -> body i workers.(i)) ())
  in
  List.iter Thread.join threads;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let hits1, misses1, fsyncs1, commits1 = server_counters ~host ~port in
  let hist1 = select_latency_snapshot ~host ~port in
  let sum f = Array.fold_left (fun acc w -> acc + f w) 0 workers in
  let ok = sum (fun w -> w.w_ok) in
  let latencies =
    Array.of_list (Array.fold_left (fun acc w -> w.w_latencies @ acc) [] workers)
  in
  Array.sort compare latencies;
  let cache_hits = max 0 (hits1 - hits0) in
  let cache_misses = max 0 (misses1 - misses0) in
  let looked_up = cache_hits + cache_misses in
  let p50_ms = percentile latencies 50. in
  let p95_ms = percentile latencies 95. in
  let p99_ms = percentile latencies 99. in
  (* the run's own server-side recordings: the registry histogram is
     cumulative (and process-wide under the in-process tests), so only
     the before/after delta belongs to this fan-out *)
  let delta =
    match (hist0, hist1) with
    | Some a, Some b -> Some (Metrics.Histogram.sub b a)
    | None, Some b -> Some b
    | _ -> None
  in
  let server_q p =
    match delta with
    | Some d when Metrics.Histogram.count d > 0 ->
        Metrics.Histogram.quantile d (p /. 100.) *. 1000.
    | _ -> 0.
  in
  let server_p50_ms = server_q 50. in
  let server_p95_ms = server_q 95. in
  let server_p99_ms = server_q 99. in
  let pings =
    Array.of_list
      (Array.fold_left (fun acc w -> w.w_ping_latencies @ acc) [] workers)
  in
  Array.sort compare pings;
  let ping_p50_ms = percentile pings 50. in
  let ping_p95_ms = percentile pings 95. in
  let ping_p99_ms = percentile pings 99. in
  (* Cross-check: a query's client-side RTT is server-side processing
     plus a transport/scheduling floor, and the interleaved PINGs
     measure that floor under the same load.  Queue waits do not
     correspond rank-by-rank, so tail quantiles cannot be equated — but
     expectations add: E[RTT] = E[floor] + E[service].  Agreement
     therefore demands (a) at each of p50/p95/p99 the server-side
     quantile never exceeds the client-side value by more than one log₂
     bucket (processing is a component of the round trip); (b) the mean
     identity holds — client mean minus ping mean matches the
     histogram's sum/count within the larger of 0.5 ms and the server
     mean itself (scheduling noise at sub-ms scales rivals service
     time, and a units or labelling bug is off by orders of magnitude,
     not a factor of two); and (c) at the median, where ranks are
     stable, the floor-adjusted client value matches the server value
     within one bucket width plus the same 0.5 ms allowance. *)
  let mean a =
    let n = Array.length a in
    if n = 0 then 0.
    else Array.fold_left ( +. ) 0. a /. float_of_int n
  in
  let client_mean_ms = mean latencies in
  let ping_mean_ms = mean pings in
  let bucket_width_ms v_ms =
    let b = Metrics.Histogram.bounds in
    let i = Metrics.Histogram.bucket_index (v_ms /. 1000.) in
    let w =
      if i >= Array.length b then b.(Array.length b - 1)
      else if i = 0 then b.(0)
      else b.(i) -. b.(i - 1)
    in
    w *. 1000.
  in
  let server_mean_ms =
    match delta with
    | Some d when Metrics.Histogram.count d > 0 ->
        d.Metrics.Histogram.sum /. float_of_int (Metrics.Histogram.count d) *. 1000.
    | _ -> 0.
  in
  let have_delta =
    match delta with
    | Some d -> Metrics.Histogram.count d > 0
    | None -> false
  in
  let server_within_client =
    (not have_delta)
    || List.for_all
         (fun (client_ms, server_ms) ->
           client_ms <= 0. || server_ms <= 0.
           || Metrics.Histogram.bucket_index (server_ms /. 1000.)
              <= Metrics.Histogram.bucket_index (client_ms /. 1000.) + 1)
         [
           (p50_ms, server_p50_ms);
           (p95_ms, server_p95_ms);
           (p99_ms, server_p99_ms);
         ]
  in
  let percentiles_agree =
    (not have_delta)
    || begin
         let mean_ok =
           let adjusted = Float.max (client_mean_ms -. ping_mean_ms) 0. in
           Float.abs (adjusted -. server_mean_ms)
           <= Float.max 0.5 (Float.max server_mean_ms (0.5 *. ping_mean_ms))
         in
         let median_ok =
           p50_ms <= 0. || server_p50_ms <= 0.
           ||
           let adjusted = Float.max (p50_ms -. ping_p50_ms) 0. in
           Float.abs (server_p50_ms -. adjusted)
           <= Float.max (bucket_width_ms (Float.max server_p50_ms adjusted)) 0.5
         in
         server_within_client && mean_ok && median_ok
       end
  in
  {
    clients;
    per_client;
    total = sum (fun w -> w.w_sent);
    ok;
    writes = sum (fun w -> w.w_writes);
    errors = sum (fun w -> w.w_errors);
    busy = sum (fun w -> w.w_busy);
    protocol_errors = sum (fun w -> w.w_protocol);
    dropped_connections = sum (fun w -> w.w_dropped);
    elapsed_s;
    qps = (if elapsed_s > 0. then float_of_int ok /. elapsed_s else 0.);
    p50_ms;
    p95_ms;
    p99_ms;
    max_ms = (if Array.length latencies = 0 then 0. else latencies.(Array.length latencies - 1));
    bit_identical = sum (fun w -> w.w_mismatch) = 0;
    cache_hits;
    cache_misses;
    hit_rate =
      (if looked_up = 0 then 0.
       else float_of_int cache_hits /. float_of_int looked_up);
    wal_fsyncs = max 0 (fsyncs1 - fsyncs0);
    wal_commits = max 0 (commits1 - commits0);
    server_p50_ms;
    server_p95_ms;
    server_p99_ms;
    ping_p50_ms;
    ping_p95_ms;
    ping_p99_ms;
    client_mean_ms;
    ping_mean_ms;
    server_mean_ms;
    server_within_client;
    percentiles_agree;
  }

let run ?(host = "127.0.0.1") ?(expected = []) ~port ~clients ~per_client () =
  fan_out ~host ~port ~clients ~per_client (fun i w ->
      worker_body ~host ~port ~expected ~per_client ~index:i w)

let run_mixed ?(host = "127.0.0.1") ?(physical = Session.Eval.Physical.Indexed)
    ?(expected = []) ~port ~clients ~per_client () =
  fan_out ~host ~port ~clients ~per_client (fun i w ->
      verified_worker_body ~host ~port ~physical ~expected
        ~ddl:(fun i -> [ mix_ddl i ])
        ~op:mixed_op ~per_client ~index:i w)

let run_mview ?(host = "127.0.0.1") ?(physical = Session.Eval.Physical.Indexed)
    ?(expected = []) ~port ~clients ~per_client () =
  fan_out ~host ~port ~clients ~per_client (fun i w ->
      verified_worker_body ~host ~port ~physical ~expected ~ddl:mview_ddl
        ~op:mview_op ~per_client ~index:i w)

let pp_outcome ppf o =
  Fmt.pf ppf "clients          : %d × %d requests@." o.clients o.per_client;
  Fmt.pf ppf "responses        : %d ok (%d writes), %d error, %d busy of %d@." o.ok
    o.writes o.errors o.busy o.total;
  Fmt.pf ppf "failures         : %d dropped connections, %d protocol errors@."
    o.dropped_connections o.protocol_errors;
  Fmt.pf ppf "throughput       : %.0f q/s over %.3fs@." o.qps o.elapsed_s;
  Fmt.pf ppf "latency (ms)     : p50 %.2f, p95 %.2f, p99 %.2f, max %.2f@." o.p50_ms
    o.p95_ms o.p99_ms o.max_ms;
  Fmt.pf ppf "ping floor (ms)  : p50 %.2f, p95 %.2f, p99 %.2f@." o.ping_p50_ms
    o.ping_p95_ms o.ping_p99_ms;
  Fmt.pf ppf "means (ms)       : client %.3f = ping %.3f + server %.3f (+ noise)@."
    o.client_mean_ms o.ping_mean_ms o.server_mean_ms;
  Fmt.pf ppf "server hist (ms) : p50 %.2f, p95 %.2f, p99 %.2f (agree: %b)@."
    o.server_p50_ms o.server_p95_ms o.server_p99_ms o.percentiles_agree;
  Fmt.pf ppf "plan cache       : %d hits, %d misses (hit rate %.2f)@." o.cache_hits
    o.cache_misses o.hit_rate;
  if o.wal_commits > 0 then
    Fmt.pf ppf "wal group commit : %d commits in %d fsyncs (%.2f fsyncs/commit)@."
      o.wal_commits o.wal_fsyncs
      (float_of_int o.wal_fsyncs /. float_of_int o.wal_commits);
  Fmt.pf ppf "bit-identical    : %b@." o.bit_identical
