module Session = Eds.Session
module Repl = Eds.Repl
module Obs = Eds_obs.Obs

(* -- the workload -------------------------------------------------------- *)

(* Figure-8 shape: films and appearances, joined with a pushable
   selection.  Kept to plain INT/CHAR columns so the identical text
   works over the wire and through Session.exec_string. *)

let n_films = 40

let setup_statements =
  let ddl =
    [
      "TABLE FILM (Numf : INT, Title : CHAR)";
      "TABLE APPEARS_IN (Numf : INT, Actor : CHAR)";
      "TABLE EDGE (Src : INT, Dst : INT)";
      "TABLE R (A : INT, J : INT)";
      "TABLE S (J : INT, K : INT)";
      "TABLE T (K : INT, B : INT)";
      "CREATE VIEW REACH (Src, Dst) AS ( SELECT Src, Dst FROM EDGE UNION \
       SELECT E1.Src, E2.Dst FROM REACH E1, REACH E2 WHERE E1.Dst = E2.Src )";
    ]
  in
  let films =
    List.init n_films (fun i ->
        Printf.sprintf "INSERT INTO FILM VALUES (%d, 'F%d')" i i)
  in
  let appearances =
    List.concat
      (List.init n_films (fun i ->
           [
             Printf.sprintf "INSERT INTO APPEARS_IN VALUES (%d, 'A%d')" i (i mod 7);
             Printf.sprintf "INSERT INTO APPEARS_IN VALUES (%d, 'A%d')" i
               (((i * 3) + 1) mod 11);
           ]))
  in
  (* a 12-node chain: REACH closes to 66 tuples, selections stay small *)
  let edges =
    List.init 11 (fun i ->
        Printf.sprintf "INSERT INTO EDGE VALUES (%d, %d)" (i + 1) (i + 2))
  in
  let r =
    List.init 20 (fun i -> Printf.sprintf "INSERT INTO R VALUES (%d, %d)" i (i mod 6))
  in
  let s =
    List.concat
      (List.init 6 (fun j ->
           List.init 4 (fun k ->
               Printf.sprintf "INSERT INTO S VALUES (%d, %d)" j k)))
  in
  let t =
    List.init 4 (fun k -> Printf.sprintf "INSERT INTO T VALUES (%d, %d)" k (k * 10))
  in
  ddl @ films @ appearances @ edges @ r @ s @ t

let queries =
  [
    "SELECT Title FROM FILM, APPEARS_IN WHERE FILM.Numf = APPEARS_IN.Numf AND \
     APPEARS_IN.Actor = 'A3'";
    "SELECT Actor FROM FILM, APPEARS_IN WHERE FILM.Numf = APPEARS_IN.Numf AND \
     FILM.Numf = 7";
    "SELECT Title FROM FILM WHERE Numf = 11";
    "SELECT R.A, T.B FROM R, S, T WHERE R.J = S.J AND S.K = T.K";
    "SELECT R.A, T.B FROM R, S, T WHERE R.J = S.J AND S.K = T.K AND T.B = 20";
    "SELECT Dst FROM REACH WHERE Src = 2";
    "SELECT Src FROM REACH WHERE Dst = 9";
    "SELECT Title FROM FILM, APPEARS_IN WHERE FILM.Numf = APPEARS_IN.Numf AND \
     FILM.Numf = 3";
  ]

let apply_setup session =
  List.iter (fun stmt -> ignore (Session.exec_string session stmt)) setup_statements

let setup_over_wire client =
  List.iter
    (fun stmt ->
      match Client.request client stmt with
      | Protocol.Ok, _ -> ()
      | status, payload ->
          failwith
            (Printf.sprintf "setup statement %S answered %s: %s" stmt
               (Protocol.status_to_string status)
               (String.trim payload)))
    setup_statements

let render_result result =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Repl.print_result ppf result;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let render_rows rel = render_result (Session.Rows rel)

let expected_payloads session =
  List.map (fun q -> (q, render_rows (Session.query session q))) queries

let n_queries = List.length queries
let query_at i = List.nth queries (i mod n_queries)

(* -- the mixed read/write workload ---------------------------------------- *)

(* Each client owns a private table: writes never collide across
   clients, so every response — write acks included — can be verified
   byte-for-byte against a per-client oracle session that replays the
   same statements locally.  Shared-table reads are interleaved to keep
   the snapshot read path under pressure while the writers churn. *)

let mix_table index = Printf.sprintf "MIX_%d" index
let mix_ddl index = Printf.sprintf "TABLE %s (K : INT, V : INT)" (mix_table index)

(* deterministic op [j] of client [index]: 2 writes and 3 reads per 5 *)
let mixed_op ~index j =
  let t = mix_table index in
  match j mod 5 with
  | 0 -> `Write (Printf.sprintf "INSERT INTO %s VALUES (%d, %d)" t j ((j * 7) mod 100))
  | 1 -> `Private_read (Printf.sprintf "SELECT V FROM %s WHERE K = %d" t (j - 1))
  | 2 -> `Shared_read (query_at (index + j))
  | 3 ->
      `Write
        (if j mod 10 = 3 then
           Printf.sprintf "UPDATE %s SET V = %d WHERE K = %d" t (j mod 50) (j - 3)
         else Printf.sprintf "DELETE FROM %s WHERE K = %d" t (j - 3))
  | _ -> `Private_read (Printf.sprintf "SELECT K, V FROM %s" t)

(* -- the fan-out --------------------------------------------------------- *)

type outcome = {
  clients : int;
  per_client : int;
  total : int;
  ok : int;
  writes : int;
  errors : int;
  busy : int;
  protocol_errors : int;
  dropped_connections : int;
  elapsed_s : float;
  qps : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  bit_identical : bool;
  cache_hits : int;
  cache_misses : int;
  hit_rate : float;
}

type worker = {
  mutable w_ok : int;
  mutable w_writes : int;
  mutable w_errors : int;
  mutable w_busy : int;
  mutable w_protocol : int;
  mutable w_dropped : int;
  mutable w_sent : int;
  mutable w_mismatch : int;
  mutable w_latencies : float list;  (** ms, newest first *)
}

let fresh_worker () =
  {
    w_ok = 0;
    w_writes = 0;
    w_errors = 0;
    w_busy = 0;
    w_protocol = 0;
    w_dropped = 0;
    w_sent = 0;
    w_mismatch = 0;
    w_latencies = [];
  }

let cache_counters ~host ~port =
  match Client.connect ~host port with
  | exception _ -> (0, 0)
  | client ->
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          match Client.request client "METRICS" with
          | Protocol.Ok, payload -> (
              match Obs.Json.parse (String.trim payload) with
              | Ok json ->
                  let geti key =
                    match Obs.Json.member key json with
                    | Some v -> Option.value ~default:0 (Obs.Json.to_int v)
                    | None -> 0
                  in
                  (geti "server.plan_cache.hits", geti "server.plan_cache.misses")
              | Error _ -> (0, 0))
          | _ -> (0, 0)
          | exception _ -> (0, 0))

let worker_body ~host ~port ~expected ~per_client ~index w =
  match Client.connect ~host port with
  | exception _ -> w.w_dropped <- w.w_dropped + 1
  | client -> (
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          try
            for j = 0 to per_client - 1 do
              let q = query_at (index + j) in
              w.w_sent <- w.w_sent + 1;
              let t0 = Unix.gettimeofday () in
              match Client.request client q with
              | Protocol.Ok, payload ->
                  w.w_latencies <-
                    ((Unix.gettimeofday () -. t0) *. 1000.) :: w.w_latencies;
                  w.w_ok <- w.w_ok + 1;
                  (match List.assoc_opt q expected with
                  | Some want when want <> payload -> w.w_mismatch <- w.w_mismatch + 1
                  | _ -> ())
              | Protocol.Error, _ -> w.w_errors <- w.w_errors + 1
              | Protocol.Busy, _ -> w.w_busy <- w.w_busy + 1
            done
          with
          | End_of_file | Unix.Unix_error _ | Sys_error _ ->
              w.w_dropped <- w.w_dropped + 1
          | Failure _ -> w.w_protocol <- w.w_protocol + 1))

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let idx = int_of_float (Float.ceil (p /. 100. *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

(* Each client owns a private table, so its write acks and private
   reads are checked against a per-client oracle session replaying the
   same statements; shared-table reads check against [expected] like
   the read-only mode. *)
let mixed_worker_body ~host ~port ~physical ~expected ~per_client ~index w =
  match Client.connect ~host port with
  | exception _ -> w.w_dropped <- w.w_dropped + 1
  | client -> (
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          try
            let oracle = Session.create () in
            Session.set_physical oracle physical;
            (match Client.request client (mix_ddl index) with
            | Protocol.Ok, _ -> ignore (Session.exec_string oracle (mix_ddl index))
            | _, payload ->
                failwith
                  (Printf.sprintf "mixed setup for client %d: %s" index
                     (String.trim payload)));
            for j = 0 to per_client - 1 do
              let op = mixed_op ~index j in
              let stmt =
                match op with
                | `Write s | `Shared_read s | `Private_read s -> s
              in
              w.w_sent <- w.w_sent + 1;
              let t0 = Unix.gettimeofday () in
              match Client.request client stmt with
              | Protocol.Ok, payload -> (
                  w.w_latencies <-
                    ((Unix.gettimeofday () -. t0) *. 1000.) :: w.w_latencies;
                  w.w_ok <- w.w_ok + 1;
                  match op with
                  | `Shared_read _ -> (
                      match List.assoc_opt stmt expected with
                      | Some want when want <> payload ->
                          w.w_mismatch <- w.w_mismatch + 1
                      | _ -> ())
                  | `Write _ ->
                      w.w_writes <- w.w_writes + 1;
                      if render_result (Session.exec_string oracle stmt) <> payload
                      then w.w_mismatch <- w.w_mismatch + 1
                  | `Private_read _ ->
                      if render_rows (Session.query oracle stmt) <> payload then
                        w.w_mismatch <- w.w_mismatch + 1)
              | Protocol.Error, _ -> w.w_errors <- w.w_errors + 1
              | Protocol.Busy, _ -> w.w_busy <- w.w_busy + 1
            done
          with
          | End_of_file | Unix.Unix_error _ | Sys_error _ ->
              w.w_dropped <- w.w_dropped + 1
          | Failure _ -> w.w_protocol <- w.w_protocol + 1
          | Session.Session_error _ -> w.w_protocol <- w.w_protocol + 1))

let fan_out ~host ~port ~clients ~per_client body =
  let hits0, misses0 = cache_counters ~host ~port in
  let workers = Array.init clients (fun _ -> fresh_worker ()) in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun i -> Thread.create (fun () -> body i workers.(i)) ())
  in
  List.iter Thread.join threads;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let hits1, misses1 = cache_counters ~host ~port in
  let sum f = Array.fold_left (fun acc w -> acc + f w) 0 workers in
  let ok = sum (fun w -> w.w_ok) in
  let latencies =
    Array.of_list (Array.fold_left (fun acc w -> w.w_latencies @ acc) [] workers)
  in
  Array.sort compare latencies;
  let cache_hits = max 0 (hits1 - hits0) in
  let cache_misses = max 0 (misses1 - misses0) in
  let looked_up = cache_hits + cache_misses in
  {
    clients;
    per_client;
    total = sum (fun w -> w.w_sent);
    ok;
    writes = sum (fun w -> w.w_writes);
    errors = sum (fun w -> w.w_errors);
    busy = sum (fun w -> w.w_busy);
    protocol_errors = sum (fun w -> w.w_protocol);
    dropped_connections = sum (fun w -> w.w_dropped);
    elapsed_s;
    qps = (if elapsed_s > 0. then float_of_int ok /. elapsed_s else 0.);
    p50_ms = percentile latencies 50.;
    p95_ms = percentile latencies 95.;
    p99_ms = percentile latencies 99.;
    max_ms = (if Array.length latencies = 0 then 0. else latencies.(Array.length latencies - 1));
    bit_identical = sum (fun w -> w.w_mismatch) = 0;
    cache_hits;
    cache_misses;
    hit_rate =
      (if looked_up = 0 then 0.
       else float_of_int cache_hits /. float_of_int looked_up);
  }

let run ?(host = "127.0.0.1") ?(expected = []) ~port ~clients ~per_client () =
  fan_out ~host ~port ~clients ~per_client (fun i w ->
      worker_body ~host ~port ~expected ~per_client ~index:i w)

let run_mixed ?(host = "127.0.0.1") ?(physical = Session.Eval.Physical.Indexed)
    ?(expected = []) ~port ~clients ~per_client () =
  fan_out ~host ~port ~clients ~per_client (fun i w ->
      mixed_worker_body ~host ~port ~physical ~expected ~per_client ~index:i w)

let pp_outcome ppf o =
  Fmt.pf ppf "clients          : %d × %d requests@." o.clients o.per_client;
  Fmt.pf ppf "responses        : %d ok (%d writes), %d error, %d busy of %d@." o.ok
    o.writes o.errors o.busy o.total;
  Fmt.pf ppf "failures         : %d dropped connections, %d protocol errors@."
    o.dropped_connections o.protocol_errors;
  Fmt.pf ppf "throughput       : %.0f q/s over %.3fs@." o.qps o.elapsed_s;
  Fmt.pf ppf "latency (ms)     : p50 %.2f, p95 %.2f, p99 %.2f, max %.2f@." o.p50_ms
    o.p95_ms o.p99_ms o.max_ms;
  Fmt.pf ppf "plan cache       : %d hits, %d misses (hit rate %.2f)@." o.cache_hits
    o.cache_misses o.hit_rate;
  Fmt.pf ppf "bit-identical    : %b@." o.bit_identical
