type stats = { read_acquired : int; write_acquired : int }

module Metrics = Eds_obs.Metrics

let m_read =
  Metrics.counter ~help:"Reader-writer lock acquisitions"
    ~labels:[ ("mode", "read") ]
    "eds_rwlock_acquisitions_total"

let m_write =
  Metrics.counter ~help:"Reader-writer lock acquisitions"
    ~labels:[ ("mode", "write") ]
    "eds_rwlock_acquisitions_total"

type t = {
  lock : Mutex.t;
  can_read : Condition.t;
  can_write : Condition.t;
  mutable active_readers : int;
  mutable writer : bool;
  mutable waiting_writers : int;
  mutable read_acquired : int;
  mutable write_acquired : int;
}

let create () =
  {
    lock = Mutex.create ();
    can_read = Condition.create ();
    can_write = Condition.create ();
    active_readers = 0;
    writer = false;
    waiting_writers = 0;
    read_acquired = 0;
    write_acquired = 0;
  }

let read_lock t =
  Mutex.lock t.lock;
  (* queue behind waiting writers: writer preference *)
  while t.writer || t.waiting_writers > 0 do
    Condition.wait t.can_read t.lock
  done;
  t.active_readers <- t.active_readers + 1;
  t.read_acquired <- t.read_acquired + 1;
  Metrics.Counter.incr m_read;
  Mutex.unlock t.lock

let read_unlock t =
  Mutex.lock t.lock;
  t.active_readers <- t.active_readers - 1;
  if t.active_readers = 0 then Condition.signal t.can_write;
  Mutex.unlock t.lock

let write_lock t =
  Mutex.lock t.lock;
  t.waiting_writers <- t.waiting_writers + 1;
  while t.writer || t.active_readers > 0 do
    Condition.wait t.can_write t.lock
  done;
  t.waiting_writers <- t.waiting_writers - 1;
  t.writer <- true;
  t.write_acquired <- t.write_acquired + 1;
  Metrics.Counter.incr m_write;
  Mutex.unlock t.lock

let write_unlock t =
  Mutex.lock t.lock;
  t.writer <- false;
  (* wake a possible next writer first, and all queued readers: whoever
     wins re-checks its predicate under the mutex *)
  Condition.signal t.can_write;
  Condition.broadcast t.can_read;
  Mutex.unlock t.lock

let with_read t f =
  read_lock t;
  Fun.protect ~finally:(fun () -> read_unlock t) f

let with_write t f =
  write_lock t;
  Fun.protect ~finally:(fun () -> write_unlock t) f

let readers t =
  Mutex.lock t.lock;
  let n = t.active_readers in
  Mutex.unlock t.lock;
  n

let stats t =
  Mutex.lock t.lock;
  let s = { read_acquired = t.read_acquired; write_acquired = t.write_acquired } in
  Mutex.unlock t.lock;
  s

let reset_stats t =
  Mutex.lock t.lock;
  t.read_acquired <- 0;
  t.write_acquired <- 0;
  Mutex.unlock t.lock
