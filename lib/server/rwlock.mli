(** A writer-preferring readers-writer lock.

    The query server executes SELECTs under the read side (many
    connections concurrently, the session is only read) and every
    mutating statement or directive under the write side (exclusive).
    Writers are preferred: once a writer is waiting, new readers queue
    behind it, so a stream of cheap reads cannot starve DDL. *)

type t

val create : unit -> t

val with_read : t -> (unit -> 'a) -> 'a
(** Run the thunk holding a shared read lock; released on exceptions. *)

val with_write : t -> (unit -> 'a) -> 'a
(** Run the thunk holding the exclusive write lock; released on
    exceptions. *)

val readers : t -> int
(** Instantaneous active-reader count (diagnostics only). *)

type stats = { read_acquired : int; write_acquired : int }

val stats : t -> stats
(** Cumulative acquisition counts.  The query server's snapshot reads
    are verified lock-free by asserting [read_acquired] stays zero
    under a concurrent SELECT load. *)

val reset_stats : t -> unit
(** Zero the acquisition counters ([STATS RESET]). *)
