(** The edsd wire protocol.

    Requests are single lines: an ESQL statement, a [.directive] from
    the edsql shell, or an uppercase server command ([HELP], [PING],
    [STATS], [METRICS], [SAVE <path>], [QUIT]).

    Responses are length-prefixed but still readable over [nc]:

    {v
    <status> <nbytes>\n
    <nbytes bytes of payload>
    v}

    where [<status>] is [ok], [error] or [busy].  The payload is UTF-8
    text (or JSON for [METRICS]) and, by convention, ends in a newline
    when non-empty so interactive use stays line-aligned. *)

type status = Ok | Error | Busy

val status_to_string : status -> string
val status_of_string : string -> status option

val write_response : out_channel -> status -> string -> unit
(** Emit one framed response and flush. *)

val read_response : in_channel -> (status * string) option
(** Read one framed response; [None] on clean EOF.  Raises [Failure] on
    a malformed frame (a non-protocol peer). *)

val send_request : out_channel -> string -> unit
(** Send one request line (the line must not contain ['\n']) and
    flush. *)
