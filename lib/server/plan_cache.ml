(* Classic LRU: a hash table over an intrusive doubly-linked list in
   recency order.  [mru]/[lru] are the ends; every hit splices the node
   to the front, every insertion beyond capacity drops the tail. *)

module Metrics = Eds_obs.Metrics

(* process-wide registry counters, aggregated across cache instances;
   the per-instance [stats] record remains the precise view *)
let m_hits = Metrics.counter ~help:"Plan-cache lookups served from cache" "eds_plan_cache_hits_total"
let m_misses = Metrics.counter ~help:"Plan-cache lookups that missed" "eds_plan_cache_misses_total"

let m_evictions =
  Metrics.counter ~help:"Plans evicted by LRU capacity pressure"
    "eds_plan_cache_evictions_total"

let m_insertions =
  Metrics.counter ~help:"Plans inserted into the cache" "eds_plan_cache_insertions_total"

let m_swept =
  Metrics.counter ~help:"Stale-generation plans removed eagerly"
    "eds_plan_cache_swept_total"

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (* towards MRU *)
  mutable next : 'a node option;  (* towards LRU *)
}

type 'a t = {
  capacity : int;
  tbl : (string, 'a node) Hashtbl.t;
  mutable mru : 'a node option;
  mutable lru : 'a node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable insertions : int;
  mutable swept : int;
  lock : Mutex.t;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  insertions : int;
  swept : int;
  size : int;
  capacity : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Plan_cache.create: capacity must be positive";
  {
    capacity;
    tbl = Hashtbl.create (min capacity 64);
    mru = None;
    lru = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    insertions = 0;
    swept = 0;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.mru <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.lru <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.mru;
  n.prev <- None;
  (match t.mru with Some m -> m.prev <- Some n | None -> t.lru <- Some n);
  t.mru <- Some n

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some n ->
          t.hits <- t.hits + 1;
          Metrics.Counter.incr m_hits;
          unlink t n;
          push_front t n;
          Some n.value
      | None ->
          t.misses <- t.misses + 1;
          Metrics.Counter.incr m_misses;
          None)

let add t key value =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some n ->
          n.value <- value;
          unlink t n;
          push_front t n
      | None ->
          let n = { key; value; prev = None; next = None } in
          Hashtbl.replace t.tbl key n;
          push_front t n;
          t.insertions <- t.insertions + 1;
          Metrics.Counter.incr m_insertions;
          if Hashtbl.length t.tbl > t.capacity then
            match t.lru with
            | Some tail ->
                unlink t tail;
                Hashtbl.remove t.tbl tail.key;
                t.evictions <- t.evictions + 1;
                Metrics.Counter.incr m_evictions
            | None -> ())

let peek t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some n -> Some n.value
      | None -> None)

(* Eagerly drop entries whose key a new generation has orphaned: left to
   age out of the LRU tail they would squeeze live plans out of a full
   cache (capacity charged for entries that can never hit again). *)
let sweep t stale =
  locked t (fun () ->
      let doomed =
        Hashtbl.fold (fun key n acc -> if stale key then n :: acc else acc) t.tbl []
      in
      List.iter
        (fun n ->
          unlink t n;
          Hashtbl.remove t.tbl n.key;
          t.swept <- t.swept + 1;
          Metrics.Counter.incr m_swept)
        doomed;
      List.length doomed)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.tbl;
      t.mru <- None;
      t.lru <- None)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        insertions = t.insertions;
        swept = t.swept;
        size = Hashtbl.length t.tbl;
        capacity = t.capacity;
      })

let reset_stats t =
  locked t (fun () ->
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0;
      t.insertions <- 0;
      t.swept <- 0)

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0. else float_of_int s.hits /. float_of_int total
