module Session = Eds.Session
module Eval = Eds_engine.Eval

type t = {
  session : Session.t;
  cache : Session.Lera.rel Plan_cache.t;
  record_lock : Mutex.t;
      (* serializes the fold of per-query stats into the session's
         cumulative counters *)
}

let create ?(capacity = 256) session =
  { session; cache = Plan_cache.create ~capacity; record_lock = Mutex.create () }

let session t = t.session

let normalize text =
  let buf = Buffer.create (String.length text) in
  let pending_space = ref false in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' | '\r' -> if Buffer.length buf > 0 then pending_space := true
      | c ->
          if !pending_space then Buffer.add_char buf ' ';
          pending_space := false;
          Buffer.add_char buf c)
    text;
  let s = Buffer.contents buf in
  let n = String.length s in
  if n > 0 && s.[n - 1] = ';' then String.trim (String.sub s 0 (n - 1)) else s

(* the SELECT keyword must end the token: "SELECTIVITY ..." is not one *)
let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let is_select line =
  let line = String.trim line in
  String.length line >= 6
  && String.uppercase_ascii (String.sub line 0 6) = "SELECT"
  && (String.length line = 6 || not (is_ident_char line.[6]))

let key t text =
  Printf.sprintf "g%d|%s" (Session.generation t.session) (normalize text)

let plan t text =
  let key = key t text in
  match Plan_cache.find t.cache key with
  | Some rel -> (rel, `Hit)
  | None ->
      let p = Session.explain t.session text in
      Plan_cache.add t.cache key p.Session.rewritten;
      (p.Session.rewritten, `Miss)

let execute t text =
  let rel, origin = plan t text in
  let stats = Eval.fresh_stats () in
  let result = Session.run_plan ~stats t.session rel in
  Mutex.lock t.record_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.record_lock)
    (fun () -> Session.record_external_execution t.session stats);
  (result, origin)

let cache_stats t = Plan_cache.stats t.cache
let clear_cache t = Plan_cache.clear t.cache
