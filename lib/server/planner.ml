module Session = Eds.Session
module Database = Eds_engine.Database
module Eval = Eds_engine.Eval
module Metrics = Eds_obs.Metrics

(* same cell as the session's execute-phase histogram: cached-plan
   executions skip Session.exec entirely but must still show up in
   eds_phase_duration_seconds{phase="execute"} *)
let m_execute =
  Metrics.histogram ~help:"Query pipeline phase latency in seconds"
    ~labels:[ ("phase", "execute") ]
    "eds_phase_duration_seconds"

type report = {
  origin : [ `Hit | `Miss ];
  parse_s : float;
  translate_s : float;
  rewrite_s : float;
  plan_s : float;
  exec_s : float;
  work : Eval.stats;
}

type t = {
  session : Session.t;
  cache : Session.Lera.rel Plan_cache.t;
  record_lock : Mutex.t;
      (* serializes the fold of per-query stats into the session's
         cumulative counters *)
  gen_lock : Mutex.t;
      (* serializes the stale-entry sweep on a generation bump *)
  mutable swept_gen : int;  (* generation the cache was last swept for *)
}

let create ?(capacity = 256) session =
  {
    session;
    cache = Plan_cache.create ~capacity;
    record_lock = Mutex.create ();
    gen_lock = Mutex.create ();
    swept_gen = Session.generation session;
  }

let session t = t.session

let normalize text =
  let buf = Buffer.create (String.length text) in
  let pending_space = ref false in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' | '\r' -> if Buffer.length buf > 0 then pending_space := true
      | c ->
          if !pending_space then Buffer.add_char buf ' ';
          pending_space := false;
          Buffer.add_char buf c)
    text;
  let s = Buffer.contents buf in
  let n = String.length s in
  if n > 0 && s.[n - 1] = ';' then String.trim (String.sub s 0 (n - 1)) else s

(* the SELECT keyword must end the token: "SELECTIVITY ..." is not one *)
let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let is_select line =
  let line = String.trim line in
  String.length line >= 6
  && String.uppercase_ascii (String.sub line 0 6) = "SELECT"
  && (String.length line = 6 || not (is_ident_char line.[6]))

let gen_prefix gen = Printf.sprintf "g%d|" gen

let key t text = gen_prefix (Session.generation t.session) ^ normalize text

(* A generation bump orphans every entry keyed under the old one; sweep
   them out eagerly so a full cache spends its capacity on live plans
   only, instead of letting dead keys age out of the LRU tail. *)
let sweep_stale t gen =
  Mutex.lock t.gen_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.gen_lock)
    (fun () ->
      if t.swept_gen <> gen then begin
        let live = gen_prefix gen in
        ignore
          (Plan_cache.sweep t.cache (fun key ->
               not (String.starts_with ~prefix:live key)));
        t.swept_gen <- gen
      end)

let plan_timed ?(exclusive = fun f -> f ()) t text =
  let gen = Session.generation t.session in
  if gen <> t.swept_gen then sweep_stale t gen;
  let key = key t text in
  match Plan_cache.find t.cache key with
  | Some rel -> (rel, `Hit, (0., 0., 0.))
  | None ->
      let phases = ref (0., 0., 0.) in
      let rel =
        exclusive (fun () ->
            (* double-check: a racing thread may have planned this text
               while we waited for the exclusive section *)
            match Plan_cache.peek t.cache key with
            | Some rel -> rel
            | None ->
                let p = Session.explain t.session text in
                phases := (p.Session.parse_s, p.Session.translate_s, p.Session.rewrite_s);
                Plan_cache.add t.cache key p.Session.rewritten;
                p.Session.rewritten)
      in
      (rel, `Miss, !phases)

let plan ?exclusive t text =
  let rel, origin, _ = plan_timed ?exclusive t text in
  (rel, origin)

let execute_timed ?exclusive t text =
  let t0 = Unix.gettimeofday () in
  let rel, origin, (parse_s, translate_s, rewrite_s) = plan_timed ?exclusive t text in
  let plan_s = Unix.gettimeofday () -. t0 in
  let stats = Eval.fresh_stats () in
  (* evaluate against an immutable snapshot: no read lock, concurrent
     writers publish new states without disturbing this query *)
  let db = Session.snapshot_db t.session in
  let t1 = Unix.gettimeofday () in
  let result = Session.run_plan ~stats ~db t.session rel in
  let exec_s = Unix.gettimeofday () -. t1 in
  Metrics.Histogram.observe m_execute exec_s;
  Mutex.lock t.record_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.record_lock)
    (fun () -> Session.record_external_execution t.session stats);
  (result, { origin; parse_s; translate_s; rewrite_s; plan_s; exec_s; work = stats })

let execute ?exclusive t text =
  let rel, r = execute_timed ?exclusive t text in
  (rel, r.origin)

let cache_stats t = Plan_cache.stats t.cache
let clear_cache t = Plan_cache.clear t.cache
let reset_cache_stats t = Plan_cache.reset_stats t.cache
