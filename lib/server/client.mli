(** A minimal blocking client for the edsd wire protocol, used by the
    [edsql --connect] shell, the load generator and the tests. *)

type t

val connect : ?host:string -> int -> t
(** [connect ~host port].  Default host ["127.0.0.1"].  Raises
    [Unix.Unix_error] on refusal. *)

val request : t -> string -> Protocol.status * string
(** Send one request line and read its framed response.  Raises
    [End_of_file] if the server closed the connection, [Failure] on a
    malformed frame. *)

val close : t -> unit
(** Idempotent. *)
