(** Shared planning front-end of the query server: maps SELECT text to a
    rewritten LERA plan through a bounded {!Plan_cache}, so a repeated
    query skips parse → translate → rewrite entirely.

    Cache keys are ["g<generation>|<normalized text>"] — the session's
    plan generation ({!Eds.Session.generation}) plus the statement
    with whitespace runs collapsed and the trailing [';'] dropped.  Any
    optimizer-config change, rule addition or DDL bumps the generation,
    so stale plans can never be served; the first planning after a bump
    eagerly sweeps the orphaned entries ({!Plan_cache.sweep}) so a full
    cache spends its capacity on live plans only.

    Evaluation runs against an immutable database snapshot
    ({!Eds.Session.snapshot_db}), so concurrent callers never need a
    read lock: the only shared mutable state a SELECT touches is the
    catalog during planning of a cache {e miss}, which is why [plan] /
    [execute] accept an [exclusive] wrapper the server points at its
    write lock. *)

module Session = Eds.Session

type t

val create : ?capacity:int -> Session.t -> t
(** Default capacity: 256 plans. *)

val session : t -> Session.t

val normalize : string -> string
(** Whitespace-insensitive key text: runs of blanks collapse to one
    space, leading/trailing blanks and a trailing [';'] are dropped. *)

val is_select : string -> bool
(** Does the (trimmed) line start a SELECT statement? *)

val plan :
  ?exclusive:((unit -> Session.Lera.rel) -> Session.Lera.rel) ->
  t ->
  string ->
  Session.Lera.rel * [ `Hit | `Miss ]
(** The rewritten plan for a SELECT, from the cache when possible.
    A cache hit touches nothing but the cache itself.  A miss must read
    the shared catalog to parse/translate/rewrite, so the miss path runs
    inside [exclusive] (default: run in place) — the server passes its
    write-lock wrapper.  The section double-checks the cache on entry,
    so two threads racing on the same cold query plan it once.  Raises
    like {!Session.explain} on a miss (parse/type errors are never
    cached). *)

val execute :
  ?exclusive:((unit -> Session.Lera.rel) -> Session.Lera.rel) ->
  t ->
  string ->
  Session.Relation.t * [ `Hit | `Miss ]
(** [plan] + evaluate against {!Session.snapshot_db} — no lock needed
    during evaluation.  Runs with a private stats record, folded into
    the session's cumulative counters afterwards under an internal
    lock — safe for concurrent callers. *)

type report = {
  origin : [ `Hit | `Miss ];
  parse_s : float;  (** 0 on a cache hit (no parsing happened) *)
  translate_s : float;
  rewrite_s : float;
  plan_s : float;  (** end-to-end planning incl. cache lookup and lock wait *)
  exec_s : float;
  work : Eds_engine.Eval.stats;  (** this query's private work counters *)
}

val execute_timed :
  ?exclusive:((unit -> Session.Lera.rel) -> Session.Lera.rel) ->
  t ->
  string ->
  Session.Relation.t * report
(** [execute] with the per-phase latency breakdown and work counters the
    server's slow-query log and latency histograms need. *)

val cache_stats : t -> Plan_cache.stats
val clear_cache : t -> unit

val reset_cache_stats : t -> unit
(** Zero the cache's cumulative counters; cached plans stay. *)
