(** Shared planning front-end of the query server: maps SELECT text to a
    rewritten LERA plan through a bounded {!Plan_cache}, so a repeated
    query skips parse → translate → rewrite entirely.

    Cache keys are ["g<generation>|<normalized text>"] — the session's
    plan generation ({!Eds.Session.generation}) plus the statement
    with whitespace runs collapsed and the trailing [';'] dropped.  Any
    optimizer-config change, rule addition or DDL bumps the generation,
    so stale plans can never be served; the orphaned entries simply age
    out of the LRU tail. *)

module Session = Eds.Session

type t

val create : ?capacity:int -> Session.t -> t
(** Default capacity: 256 plans. *)

val session : t -> Session.t

val normalize : string -> string
(** Whitespace-insensitive key text: runs of blanks collapse to one
    space, leading/trailing blanks and a trailing [';'] are dropped. *)

val is_select : string -> bool
(** Does the (trimmed) line start a SELECT statement? *)

val plan : t -> string -> Session.Lera.rel * [ `Hit | `Miss ]
(** The rewritten plan for a SELECT, from the cache when possible.
    Raises like {!Session.explain} on a miss (parse/type errors are
    never cached). *)

val execute : t -> string -> Session.Relation.t * [ `Hit | `Miss ]
(** [plan] + evaluate.  Evaluation runs with a private stats record,
    folded into the session's cumulative counters afterwards under an
    internal lock — safe for concurrent callers (the server's read
    side). *)

val cache_stats : t -> Plan_cache.stats
val clear_cache : t -> unit
