type status = Ok | Error | Busy

let status_to_string = function Ok -> "ok" | Error -> "error" | Busy -> "busy"

let status_of_string = function
  | "ok" -> Some Ok
  | "error" -> Some Error
  | "busy" -> Some Busy
  | _ -> None

let write_response oc status payload =
  Printf.fprintf oc "%s %d\n" (status_to_string status) (String.length payload);
  output_string oc payload;
  flush oc

let read_response ic =
  match input_line ic with
  | exception End_of_file -> None
  | header -> (
      match String.split_on_char ' ' (String.trim header) with
      | [ word; n ] -> (
          match (status_of_string word, int_of_string_opt n) with
          | Some status, Some n when n >= 0 ->
              let payload = really_input_string ic n in
              Some (status, payload)
          | _ -> failwith (Printf.sprintf "malformed response header: %S" header))
      | _ -> failwith (Printf.sprintf "malformed response header: %S" header))

let send_request oc line =
  if String.contains line '\n' then invalid_arg "Protocol.send_request: embedded newline";
  output_string oc line;
  output_char oc '\n';
  flush oc
