(** A bounded, thread-safe LRU cache from normalized statement text to
    rewritten plans.

    The expensive phase of a query is parse → translate → rewrite; the
    server keys the result on the statement's normalized text plus the
    session's plan generation ({!Eds.Session.generation}), so a
    repeated query skips straight to evaluation while any
    config/rule/DDL change naturally orphans the stale entries (they
    age out of the LRU tail — no explicit flush needed, though
    {!clear} exists for session swaps).

    All operations take an internal mutex; the cache is shared by every
    connection thread. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] must be positive: the cache holds at most that many
    entries, evicting the least-recently-used beyond it. *)

val find : 'a t -> string -> 'a option
(** Lookup; counts a hit (and refreshes recency) or a miss. *)

val add : 'a t -> string -> 'a -> unit
(** Insert (or overwrite) at most-recently-used position, evicting the
    LRU entry when over capacity. *)

val clear : 'a t -> unit
(** Drop every entry (counters survive — they are cumulative). *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  insertions : int;
  size : int;
  capacity : int;
}

val stats : 'a t -> stats

val hit_rate : stats -> float
(** [hits / (hits + misses)], or [0.] before any lookup. *)
