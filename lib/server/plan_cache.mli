(** A bounded, thread-safe LRU cache from normalized statement text to
    rewritten plans.

    The expensive phase of a query is parse → translate → rewrite; the
    server keys the result on the statement's normalized text plus the
    session's plan generation ({!Eds.Session.generation}), so a
    repeated query skips straight to evaluation while any
    config/rule/DDL change orphans the stale entries; the planner
    removes those eagerly with {!sweep} so they never squeeze live
    plans out of a full cache ({!clear} exists for session swaps).

    All operations take an internal mutex; the cache is shared by every
    connection thread. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] must be positive: the cache holds at most that many
    entries, evicting the least-recently-used beyond it. *)

val find : 'a t -> string -> 'a option
(** Lookup; counts a hit (and refreshes recency) or a miss. *)

val add : 'a t -> string -> 'a -> unit
(** Insert (or overwrite) at most-recently-used position, evicting the
    LRU entry when over capacity. *)

val peek : 'a t -> string -> 'a option
(** Lookup without touching hit/miss counters or recency — for
    double-checked planning under an exclusive section. *)

val sweep : 'a t -> (string -> bool) -> int
(** [sweep t stale] eagerly removes every entry whose key satisfies
    [stale], returning the count.  The planner calls this on a
    generation bump so dead-generation entries stop occupying capacity
    (otherwise they would linger until they aged out of the LRU tail,
    evicting live plans from a full cache). *)

val clear : 'a t -> unit
(** Drop every entry (counters survive — they are cumulative). *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  insertions : int;
  swept : int;  (** entries removed eagerly by {!sweep} *)
  size : int;
  capacity : int;
}

val stats : 'a t -> stats

val reset_stats : 'a t -> unit
(** Zero the cumulative counters ([STATS RESET]); entries stay cached. *)

val hit_rate : stats -> float
(** [hits / (hits + misses)], or [0.] before any lookup. *)
