type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable closed : bool;
}

let connect ?(host = "127.0.0.1") port =
  let addr =
    try Unix.inet_addr_of_string host
    with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    closed = false;
  }

let request t line =
  Protocol.send_request t.oc line;
  match Protocol.read_response t.ic with
  | Some (status, payload) -> (status, payload)
  | None -> raise End_of_file

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try flush t.oc with _ -> ());
    try Unix.close t.fd with _ -> ()
  end
